package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Arg is one key/value annotation on a trace event.
type Arg struct{ Key, Val string }

// S builds a string arg.
func S(k, v string) Arg { return Arg{Key: k, Val: v} }

// I builds an integer arg.
func I(k string, v int64) Arg { return Arg{Key: k, Val: strconv.FormatInt(v, 10)} }

// D builds a duration arg.
func D(k string, v time.Duration) Arg { return Arg{Key: k, Val: v.String()} }

// Event phases (a subset of the Chrome trace_event vocabulary).
const (
	PhaseInstant  = 'i'
	PhaseComplete = 'X'
)

// TraceEvent is one recorded event on the tracer's timeline.
type TraceEvent struct {
	Ts    time.Duration // event time on the tracer's (concatenated) clock
	Dur   time.Duration // span length for PhaseComplete events
	Ph    byte
	Shard int // owning shard for sharded runs (0 otherwise)
	Cat   string
	Name  string
	Args  []Arg
}

// defaultTraceCap bounds the ring when NewTracer gets 0: enough for a
// multi-hour drive's control-plane events without unbounded memory.
const defaultTraceCap = 1 << 16

// Tracer records structured events into a fixed ring buffer, stamped by
// the simulation kernel's virtual clock. When the ring wraps, the
// oldest events are overwritten (Dropped counts them). A nil *Tracer is
// safe: every method no-ops — but hot paths should still guard with a
// nil check to avoid evaluating args.
//
// AttachClock binds (or re-binds) the time source. Re-binding offsets
// the new clock by the high-water timestamp already recorded, so a
// tracer shared across sequential worlds (spider-exp) renders as one
// concatenated timeline instead of overlapping runs.
type Tracer struct {
	mu      sync.Mutex
	now     func() time.Duration
	base    time.Duration
	high    time.Duration
	ring    []TraceEvent
	total   uint64
	filter  []string
	dropped uint64
	shard   int
}

// NewTracer creates a tracer with the given ring capacity (0 = default).
// It records nothing until AttachClock.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = defaultTraceCap
	}
	return &Tracer{ring: make([]TraceEvent, capacity)}
}

// AttachClock binds the virtual-time source (typically sim.Kernel.Now).
// Subsequent events are stamped base+now() where base is the high-water
// mark at attach time.
func (t *Tracer) AttachClock(now func() time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.base = t.high
	t.now = now
}

// SetShard tags every subsequently recorded event with the owning
// shard. Sharded runs give each tile its own tracer so recording stays
// contention-free; MergeEvents reassembles the global timeline.
func (t *Tracer) SetShard(shard int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.shard = shard
}

// SetFilter restricts recording to events whose category starts with
// one of the prefixes. No prefixes (or an empty string) records all.
func (t *Tracer) SetFilter(prefixes ...string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.filter = nil
	for _, p := range prefixes {
		if p != "" {
			t.filter = append(t.filter, p)
		}
	}
}

func (t *Tracer) pass(cat string) bool {
	if len(t.filter) == 0 {
		return true
	}
	for _, p := range t.filter {
		if strings.HasPrefix(cat, p) {
			return true
		}
	}
	return false
}

func (t *Tracer) record(ev TraceEvent) {
	if !t.pass(ev.Cat) {
		return
	}
	ev.Shard = t.shard
	if ev.Ts > t.high {
		t.high = ev.Ts
	}
	i := t.total % uint64(len(t.ring))
	if t.total >= uint64(len(t.ring)) {
		t.dropped++
	}
	t.ring[i] = ev
	t.total++
}

// Instant records a point event at the current clock time.
func (t *Tracer) Instant(cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.now == nil {
		return
	}
	t.record(TraceEvent{Ts: t.base + t.now(), Ph: PhaseInstant, Cat: cat, Name: name, Args: args})
}

// Complete records a span from start (a time in the attached clock's
// domain, e.g. a kernel timestamp the caller saved) to now.
func (t *Tracer) Complete(cat, name string, start time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.now == nil {
		return
	}
	dur := t.now() - start
	if dur < 0 {
		dur = 0
	}
	t.record(TraceEvent{Ts: t.base + start, Dur: dur, Ph: PhaseComplete, Cat: cat, Name: name, Args: args})
}

// Total returns how many events were recorded (including overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events the ring overwrote.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the retained events in recording order (oldest first).
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.total
	capN := uint64(len(t.ring))
	if n <= capN {
		return append([]TraceEvent(nil), t.ring[:n]...)
	}
	out := make([]TraceEvent, 0, capN)
	head := n % capN
	out = append(out, t.ring[head:]...)
	out = append(out, t.ring[:head]...)
	return out
}

// MergeEvents interleaves per-shard event streams into one global
// timeline, ordered by (Ts, Shard) with each shard's recording order
// preserved within a timestamp. The order is a pure function of the
// inputs, so a merged trace is as byte-stable as its per-shard parts.
func MergeEvents(streams ...[]TraceEvent) []TraceEvent {
	n := 0
	for _, s := range streams {
		n += len(s)
	}
	out := make([]TraceEvent, 0, n)
	for _, s := range streams {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Ts != out[j].Ts {
			return out[i].Ts < out[j].Ts
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}

func usec(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func argMap(args []Arg) map[string]string {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]string, len(args))
	for _, a := range args {
		m[a.Key] = a.Val
	}
	return m
}

// jsonlEvent is the JSONL export schema.
type jsonlEvent struct {
	TsUs  float64           `json:"ts_us"`
	DurUs float64           `json:"dur_us,omitempty"`
	Ph    string            `json:"ph"`
	Shard int               `json:"shard,omitempty"`
	Cat   string            `json:"cat"`
	Name  string            `json:"name"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteJSONL writes one JSON object per retained event.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return WriteEventsJSONL(w, t.Events())
}

// WriteEventsJSONL writes one JSON object per event — the export shared
// by single tracers and merged multi-shard timelines.
func WriteEventsJSONL(w io.Writer, events []TraceEvent) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		je := jsonlEvent{
			TsUs: usec(ev.Ts), Ph: string(ev.Ph), Shard: ev.Shard,
			Cat: ev.Cat, Name: ev.Name, Args: argMap(ev.Args),
		}
		if ev.Ph == PhaseComplete {
			je.DurUs = usec(ev.Dur)
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is the Chrome trace_event schema (object format).
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Ph    string            `json:"ph"`
	Ts    float64           `json:"ts"`
	Dur   *float64          `json:"dur,omitempty"`
	Pid   int               `json:"pid"`
	Tid   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes the retained events as Chrome trace_event
// JSON ({"traceEvents": [...]}), loadable in chrome://tracing and
// Perfetto. Each event category renders as its own named track.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteEventsChromeTrace(w, t.Events())
}

// WriteEventsChromeTrace is WriteChromeTrace over an explicit event set
// (e.g. a MergeEvents timeline). Shards render as separate processes;
// each category is a named track within its shard.
func WriteEventsChromeTrace(w io.Writer, events []TraceEvent) error {
	cats := make(map[string]int)
	var catNames []string
	shards := make(map[int]bool)
	for _, ev := range events {
		if _, ok := cats[ev.Cat]; !ok {
			cats[ev.Cat] = 0
			catNames = append(catNames, ev.Cat)
		}
		shards[ev.Shard] = true
	}
	sort.Strings(catNames)
	for i, c := range catNames {
		cats[c] = i + 1
	}
	var shardIDs []int
	for s := range shards {
		shardIDs = append(shardIDs, s)
	}
	sort.Ints(shardIDs)

	out := make([]chromeEvent, 0, len(events)+len(shardIDs)*(len(catNames)+1))
	for _, s := range shardIDs {
		name := "spider"
		if len(shardIDs) > 1 || s != 0 {
			name = "spider shard " + strconv.Itoa(s)
		}
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: s + 1,
			Args: map[string]string{"name": name},
		})
		for _, c := range catNames {
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: s + 1, Tid: cats[c],
				Args: map[string]string{"name": c},
			})
		}
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name, Cat: ev.Cat, Ph: string(ev.Ph),
			Ts: usec(ev.Ts), Pid: ev.Shard + 1, Tid: cats[ev.Cat], Args: argMap(ev.Args),
		}
		if ev.Ph == PhaseComplete {
			d := usec(ev.Dur)
			ce.Dur = &d
		}
		if ev.Ph == PhaseInstant {
			ce.Scope = "t" // thread-scoped instant renders as a tick mark
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{out})
}
