package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestExpositionHostileHelp pins the HELP-escaping bug: a help string
// with a newline used to split into two lines, the second of which no
// scraper could parse.
func TestExpositionHostileHelp(t *testing.T) {
	r := NewRegistry()
	r.Counter("evil_help_total", "line one\nline two with \\backslash\\")
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	want := `# HELP evil_help_total line one\nline two with \\backslash\\` + "\n"
	if !strings.Contains(out, want) {
		t.Fatalf("HELP not escaped:\n%s", out)
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("CheckExposition: %v", err)
	}
}

// TestExpositionHostileNames pins name sanitization: names that violate
// the exposition grammar must be rewritten onto it, not emitted
// verbatim.
func TestExpositionHostileNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("spider/joins-per.sec", "slashes, dashes and dots")
	r.Gauge("0leading_digit", "leading digit")
	r.Counter("", "empty name")
	r.Histogram("bad name{x=\"1\"}", "injection attempt", 1, 2)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"spider_joins_per_sec", "_0leading_digit", "bad_name_x__1__",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sanitized name %q missing from:\n%s", want, out)
		}
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("CheckExposition rejects sanitized output: %v\n%s", err, out)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"good_name:total": "good_name:total", // valid: unchanged
		"has-dash":        "has_dash",
		"7seconds":        "_7seconds",
		"":                "_",
		"ünïcode":         "__n__code", // per-byte sanitization
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
		if !ValidMetricName(SanitizeMetricName(in)) {
			t.Errorf("SanitizeMetricName(%q) still invalid", in)
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	in := "a\"b\\c\nd"
	want := `a\"b\\c\nd`
	if got := EscapeLabelValue(in); got != want {
		t.Fatalf("EscapeLabelValue = %q, want %q", got, want)
	}
	if got := EscapeLabelValue("plain"); got != "plain" {
		t.Fatalf("EscapeLabelValue(plain) = %q", got)
	}
}

// TestCheckExposition exercises the strict parser both ways: the
// package's own output must pass, and classic exposition violations
// must fail with the offending line.
func TestCheckExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "a counter").Add(3)
	r.Gauge("g", "a gauge").Set(-1.5)
	h := r.Histogram("lat_seconds", "a histogram", 0.1, 1)
	h.Observe(0.05)
	h.Observe(5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("own output rejected: %v\n%s", err, buf.String())
	}

	bad := map[string]string{
		"bad-name 1\n":                              "invalid metric name",
		"m{l=unquoted} 1\n":                         "not quoted",
		"m{l=\"open} 1\n":                           "unterminated",
		"m{l=\"bad\\q\"} 1\n":                       "illegal escape",
		"m{l=\"a\",l=\"b\"} 1\n":                    "duplicate label",
		"m notanumber\n":                            "unparseable sample value",
		"# TYPE m widget\nm 1\n":                    "unknown metric type",
		"# TYPE m counter\n# TYPE m counter\nm 1\n": "second TYPE",
		"m 1\n# TYPE m counter\nm 2\n":              "after its first sample",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n": "not cumulative",
		"# TYPE h histogram\nh_sum 1\nh_count 1\n":                                                "no +Inf bucket",
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n":                       "!= count",
	}
	for doc, want := range bad {
		err := CheckExposition([]byte(doc))
		if err == nil {
			t.Errorf("CheckExposition accepted:\n%s", doc)
		} else if !strings.Contains(err.Error(), want) {
			t.Errorf("CheckExposition(%q) = %v, want mention of %q", doc, err, want)
		}
	}
}
