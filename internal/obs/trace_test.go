package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock is a settable stand-in for sim.Kernel.Now.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) now() time.Duration { return c.t }

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.AttachClock(func() time.Duration { return 0 })
	tr.SetFilter("x")
	tr.Instant("cat", "name")
	tr.Complete("cat", "name", 0)
	if tr.Total() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must read as empty")
	}
}

func TestTracerRecordsNothingBeforeAttach(t *testing.T) {
	tr := NewTracer(8)
	tr.Instant("cat", "early")
	if tr.Total() != 0 {
		t.Fatalf("recorded %d events with no clock", tr.Total())
	}
}

func TestRingWraparound(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(8)
	tr.AttachClock(clk.now)
	for i := 0; i < 20; i++ {
		clk.t = time.Duration(i) * time.Millisecond
		tr.Instant("cat", "e")
	}
	if got := tr.Total(); got != 20 {
		t.Fatalf("total = %d, want 20", got)
	}
	if got := tr.Dropped(); got != 12 {
		t.Fatalf("dropped = %d, want 12", got)
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	// Oldest-first: events 12..19 survive.
	for i, ev := range evs {
		if want := time.Duration(12+i) * time.Millisecond; ev.Ts != want {
			t.Fatalf("event[%d].Ts = %v, want %v", i, ev.Ts, want)
		}
	}
}

func TestCompleteSpans(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(8)
	tr.AttachClock(clk.now)
	clk.t = 300 * time.Millisecond
	tr.Complete("mac.join", "assoc", 100*time.Millisecond, S("bssid", "ap1"))
	ev := tr.Events()[0]
	if ev.Ph != PhaseComplete {
		t.Fatalf("phase = %c, want X", ev.Ph)
	}
	if ev.Ts != 100*time.Millisecond || ev.Dur != 200*time.Millisecond {
		t.Fatalf("ts=%v dur=%v, want 100ms/200ms", ev.Ts, ev.Dur)
	}
	// A start after "now" (clock skew across worlds) clamps to zero
	// duration rather than going negative.
	tr.Complete("mac.join", "weird", 400*time.Millisecond)
	if d := tr.Events()[1].Dur; d != 0 {
		t.Fatalf("clamped dur = %v, want 0", d)
	}
}

func TestSetFilterPrefixes(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(8)
	tr.AttachClock(clk.now)
	tr.SetFilter("mac.", "dhcp")
	tr.Instant("mac.join", "kept")
	tr.Instant("dhcp", "kept")
	tr.Instant("core.switch", "filtered")
	if got := tr.Total(); got != 2 {
		t.Fatalf("total = %d, want 2 (core.switch filtered)", got)
	}
	tr.SetFilter() // empty filter records all again
	tr.Instant("core.switch", "kept")
	if got := tr.Total(); got != 3 {
		t.Fatalf("total = %d, want 3 after clearing filter", got)
	}
}

// Re-attaching the clock must concatenate timelines: spider-exp shares
// one tracer across sequential worlds, each starting its kernel at 0.
func TestAttachClockConcatenates(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(8)
	tr.AttachClock(clk.now)
	clk.t = 5 * time.Second
	tr.Instant("a", "world1")

	clk.t = 0 // second world's kernel restarts at zero
	tr.AttachClock(clk.now)
	clk.t = 2 * time.Second
	tr.Instant("a", "world2")

	evs := tr.Events()
	if evs[0].Ts != 5*time.Second {
		t.Fatalf("world1 ts = %v", evs[0].Ts)
	}
	if want := 7 * time.Second; evs[1].Ts != want {
		t.Fatalf("world2 ts = %v, want %v (offset by world1 high-water)", evs[1].Ts, want)
	}
}

func TestWriteJSONL(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(8)
	tr.AttachClock(clk.now)
	clk.t = time.Millisecond
	tr.Instant("dhcp", "offer", S("ip", "10.0.0.7"))
	clk.t = 3 * time.Millisecond
	tr.Complete("dhcp", "acquire", time.Millisecond, I("retx", 2))

	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0]["ph"] != "i" || lines[0]["cat"] != "dhcp" || lines[0]["ts_us"] != 1000.0 {
		t.Fatalf("instant line = %v", lines[0])
	}
	if lines[1]["ph"] != "X" || lines[1]["dur_us"] != 2000.0 {
		t.Fatalf("complete line = %v", lines[1])
	}
}

func TestWriteChromeTrace(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(8)
	tr.AttachClock(clk.now)
	clk.t = time.Millisecond
	tr.Instant("core.switch", "switch", I("from", 1), I("to", 6))
	clk.t = 2 * time.Millisecond
	tr.Complete("mac.join", "assoc", time.Millisecond)

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Cat  string         `json:"cat"`
			Name string         `json:"name"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("not valid Chrome trace JSON: %v\n%s", err, b.String())
	}
	var instants, completes, meta int
	tids := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "i":
			instants++
			if ev.Ts != 1000 {
				t.Fatalf("instant ts = %g µs, want 1000", ev.Ts)
			}
		case "X":
			completes++
			if ev.Dur == nil || *ev.Dur != 1000 {
				t.Fatalf("complete dur = %v, want 1000 µs", ev.Dur)
			}
		case "M":
			meta++
		}
		if ev.Cat != "" {
			tids[ev.Cat] = ev.Tid
		}
	}
	if instants != 1 || completes != 1 || meta == 0 {
		t.Fatalf("instants=%d completes=%d meta=%d", instants, completes, meta)
	}
	// Each category renders as its own named lane.
	if tids["core.switch"] == tids["mac.join"] {
		t.Fatalf("categories share a tid: %v", tids)
	}
}
