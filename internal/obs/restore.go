package obs

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// HandleState is one typed metric handle's value in a checkpoint.
// Read-closure metrics (CounterFunc/GaugeFunc) are deliberately absent:
// they read live component state, which restores through the component.
type HandleState struct {
	Name string
	Kind Kind

	Value uint64  // counter
	Bits  uint64  // gauge (float64 bits)
	Sum   float64 // histogram
	Count uint64
	Counts []uint64 // histogram per-bucket, last is +Inf
}

// ExportHandles captures every typed handle's accumulated value, sorted
// by name. Handles at zero are skipped: a rebuilt registry recreates
// them fresh, which is the same state.
func (r *Registry) ExportHandles() []HandleState {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []HandleState
	for _, e := range r.entries {
		hs := HandleState{Name: e.name, Kind: e.kind}
		switch {
		case e.counter != nil:
			if hs.Value = e.counter.Value(); hs.Value == 0 {
				continue
			}
		case e.gauge != nil:
			if hs.Bits = e.gauge.bits.Load(); hs.Bits == 0 {
				continue
			}
		case e.hist != nil:
			if hs.Count = e.hist.Count(); hs.Count == 0 {
				continue
			}
			hs.Sum = e.hist.Sum()
			hs.Counts = e.hist.BucketCounts()
		default:
			continue // closure-only entry
		}
		out = append(out, hs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RestoreHandles rewinds every typed handle to a checkpointed state.
// The rebuilt world must have registered the same handles (attachment
// is deterministic); handles it registered that the snapshot omits are
// zeroed, cancelling construction-time increments.
func (r *Registry) RestoreHandles(st []HandleState) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		switch {
		case e.counter != nil:
			e.counter.v.Store(0)
		case e.gauge != nil:
			e.gauge.bits.Store(0)
		case e.hist != nil:
			for i := range e.hist.counts {
				e.hist.counts[i].Store(0)
			}
			e.hist.sum.Store(0)
			e.hist.count.Store(0)
		}
	}
	for _, hs := range st {
		e := r.entries[hs.Name]
		if e == nil {
			return fmt.Errorf("obs: restored metric %q was never registered", hs.Name)
		}
		switch {
		case e.counter != nil:
			e.counter.v.Store(hs.Value)
		case e.gauge != nil:
			e.gauge.bits.Store(hs.Bits)
		case e.hist != nil:
			if len(hs.Counts) != len(e.hist.counts) {
				return fmt.Errorf("obs: metric %q restored with %d buckets, registered with %d",
					hs.Name, len(hs.Counts), len(e.hist.counts))
			}
			for i, c := range hs.Counts {
				e.hist.counts[i].Store(c)
			}
			e.hist.sum.Store(math.Float64bits(hs.Sum))
			e.hist.count.Store(hs.Count)
		default:
			return fmt.Errorf("obs: restored metric %q has no typed handle", hs.Name)
		}
	}
	return nil
}

// TracerState is a Tracer's checkpointable state: the retained ring in
// recording order plus the counters that extend it. The clock binding
// and filter are reconstructed by the rebuild.
type TracerState struct {
	Events  []TraceEvent
	Total   uint64
	Dropped uint64
	Base    time.Duration
	High    time.Duration
	Shard   int
}

// ExportState captures the tracer for a checkpoint.
func (t *Tracer) ExportState() TracerState {
	if t == nil {
		return TracerState{}
	}
	st := TracerState{Events: t.Events()}
	t.mu.Lock()
	defer t.mu.Unlock()
	st.Total, st.Dropped = t.total, t.dropped
	st.Base, st.High, st.Shard = t.base, t.high, t.shard
	return st
}

// RestoreState rewinds the tracer to a checkpointed state. The ring
// capacity must match the rebuild's (same run configuration).
func (t *Tracer) RestoreState(st TracerState) error {
	if t == nil {
		if st.Total != 0 {
			return fmt.Errorf("obs: tracer state restored into a nil tracer")
		}
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(st.Events) > len(t.ring) {
		return fmt.Errorf("obs: tracer restored with %d events into a %d-slot ring",
			len(st.Events), len(t.ring))
	}
	for i := range t.ring {
		t.ring[i] = TraceEvent{}
	}
	// Events() returned oldest-first; lay them back so the next write
	// lands where it would have in the uninterrupted run.
	capN := uint64(len(t.ring))
	start := uint64(0)
	if st.Total > capN {
		start = st.Total - capN
	}
	for i, ev := range st.Events {
		t.ring[(start+uint64(i))%capN] = ev
	}
	t.total, t.dropped = st.Total, st.Dropped
	t.base, t.high, t.shard = st.Base, st.High, st.Shard
	return nil
}
