package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind identifies a metric's type.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Counter is a monotonically increasing metric handle. All methods are
// safe on a nil receiver (no-ops), so holders never need a guard.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable metric handle. Nil-safe like Counter.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed upper-bound buckets
// (Prometheus le semantics: bucket i counts v ≤ Bounds[i]; one implicit
// +Inf bucket catches the rest). Nil-safe like Counter.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// LatencyBuckets are the default bounds (seconds) for join/switch-style
// latencies: 10 ms to ~50 s, roughly ×2 per bucket.
var LatencyBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50}

// entry is one registered metric: a typed handle, read-closures, or
// both. Closure values are summed on top of the handle at export time,
// so several attached worlds can publish into one name.
type entry struct {
	name, help string
	kind       Kind
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
	fns        []func() float64
}

// Registry holds a run's metrics. Handle registration is get-or-create:
// asking for an existing name of the same kind returns the shared
// handle, so every world attached to one registry accumulates into the
// same totals. A nil *Registry is safe: registration returns nil
// handles (which are themselves no-ops).
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func (r *Registry) get(name, help string, kind Kind) *entry {
	e := r.entries[name]
	if e == nil {
		e = &entry{name: name, help: help, kind: kind}
		r.entries[name] = e
		return e
	}
	if e.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, e.kind))
	}
	return e
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.get(name, help, KindCounter)
	if e.counter == nil {
		e.counter = &Counter{}
	}
	return e.counter
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.get(name, help, KindGauge)
	if e.gauge == nil {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds (sorted; LatencyBuckets if empty).
// Re-registration returns the existing handle; its original bounds win.
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.get(name, help, KindHistogram)
	if e.hist == nil {
		if len(bounds) == 0 {
			bounds = LatencyBuckets
		}
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		e.hist = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	}
	return e.hist
}

// CounterFunc registers a read-closure counter: fn is evaluated at
// export time and summed with any other closures (or handle) under the
// same name. The closure must be safe to call after the run completes.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.get(name, help, KindCounter)
	e.fns = append(e.fns, fn)
}

// GaugeFunc registers a read-closure gauge (summed like CounterFunc).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.get(name, help, KindGauge)
	e.fns = append(e.fns, fn)
}

// MetricPoint is one metric's exported state.
type MetricPoint struct {
	Name, Help string
	Kind       Kind
	Value      float64 // counter/gauge value
	// Histogram state (nil/zero otherwise).
	Bounds []float64
	Counts []uint64 // per-bucket, last is +Inf
	Sum    float64
	Count  uint64
}

// Snapshot is a registry's state frozen at one instant, sorted by
// metric name — the deterministic unit of aggregation and export.
type Snapshot []MetricPoint

// Snapshot freezes the registry (evaluating read-closures) into a
// name-sorted Snapshot. Nil registries snapshot empty.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(Snapshot, 0, len(r.entries))
	for _, e := range r.entries {
		p := MetricPoint{Name: e.name, Help: e.help, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			p.Value = float64(e.counter.Value())
		case KindGauge:
			p.Value = e.gauge.Value()
		case KindHistogram:
			p.Bounds = e.hist.Bounds()
			p.Counts = e.hist.BucketCounts()
			p.Sum = e.hist.Sum()
			p.Count = e.hist.Count()
		}
		for _, fn := range e.fns {
			p.Value += fn()
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MergeSnapshots folds snapshots in the given (index) order into one:
// counters and histograms sum; gauges take the last snapshot's value;
// a histogram whose bounds disagree with the first occurrence keeps the
// first occurrence's buckets but still sums Sum/Count. Feeding it the
// index-ordered output of a sweep makes the merged export independent
// of worker count.
//
// Equal names tie-break on the FIRST occurrence: its Kind, Help and
// bucket layout win, and every later point with that name folds in
// under the first occurrence's kind regardless of its own. Folding by
// the incoming point's kind would let a kind-conflicting registration
// flip an accumulator between sum and last-write semantics depending on
// which snapshot it arrived in — exactly the input-order sensitivity
// the archive byte-gate exists to rule out.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	byName := make(map[string]*MetricPoint)
	var order []string
	for _, s := range snaps {
		for i := range s {
			p := s[i]
			acc := byName[p.Name]
			if acc == nil {
				cp := p
				cp.Bounds = append([]float64(nil), p.Bounds...)
				cp.Counts = append([]uint64(nil), p.Counts...)
				byName[p.Name] = &cp
				order = append(order, p.Name)
				continue
			}
			switch acc.Kind {
			case KindCounter:
				acc.Value += p.Value
			case KindGauge:
				acc.Value = p.Value
			case KindHistogram:
				acc.Sum += p.Sum
				acc.Count += p.Count
				if len(p.Counts) == len(acc.Counts) {
					for j := range p.Counts {
						acc.Counts[j] += p.Counts[j]
					}
				}
			}
		}
	}
	sort.Strings(order)
	out := make(Snapshot, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ValidMetricName reports whether name matches the exposition-format
// metric-name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// SanitizeMetricName maps an arbitrary string onto the metric-name
// grammar: every invalid byte becomes '_', a leading digit is prefixed
// with '_', and the empty name becomes "_". Valid names pass through
// unchanged, so sanitizing at export never perturbs well-named metrics.
func SanitizeMetricName(name string) string {
	if ValidMetricName(name) {
		return name
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// escapeHelp escapes HELP text per the exposition format: backslash and
// line feed only ('"' is NOT escaped in HELP — a parser would keep the
// backslash and the text would change).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// EscapeLabelValue escapes a label value per the exposition format:
// backslash, line feed, and double quote.
func EscapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\n\"") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format. Output is deterministic: metrics sort by name.
//
// The writer guarantees a real scraper can always parse the result:
// metric names are sanitized onto the exposition grammar (invalid bytes
// become '_'; simulation metrics are all well-named, so this only moves
// hostile or foreign names), HELP text escapes backslashes and
// newlines, and label values escape backslashes, newlines and quotes.
// Before this hardening a help string containing a newline, or a metric
// name with a '-', produced output a Prometheus scrape would reject —
// which the supervisor's live /metrics endpoint turns from a cosmetic
// file bug into a service outage.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, p := range s {
		name := SanitizeMetricName(p.Name)
		if p.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(p.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, p.Kind); err != nil {
			return err
		}
		switch p.Kind {
		case KindHistogram:
			cum := uint64(0)
			for i, b := range p.Bounds {
				if i < len(p.Counts) {
					cum += p.Counts[i]
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, EscapeLabelValue(fmtFloat(b)), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, p.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, fmtFloat(p.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count %d\n", name, p.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %s\n", name, fmtFloat(p.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WritePrometheus exports the registry's current state (a convenience
// for the single-run path).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}
