package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// CheckExposition is the in-repo stand-in for `promtool check metrics`:
// a strict parser for the subset of the Prometheus text exposition
// format this package emits (and, more importantly, for everything a
// real scraper would reject). It validates, line by line:
//
//   - metric names and label names against the exposition grammar,
//   - label values as correctly quoted strings with only the legal
//     escapes (\\, \n, \"),
//   - sample values as parseable floats (including +Inf/-Inf/NaN),
//   - HELP/TYPE comment structure: at most one of each per metric,
//     TYPE before the metric's first sample, and a known metric type,
//   - histogram series shape: _bucket samples carry an le label,
//     bucket counts are cumulative and non-decreasing, and the +Inf
//     bucket equals _count.
//
// It returns the first violation with its 1-based line number, so CI
// logs point straight at the offending line.
func CheckExposition(data []byte) error {
	st := &expoState{
		typed:  map[string]string{},
		helped: map[string]bool{},
		seen:   map[string]bool{},
		bucket: map[string]*bucketState{},
	}
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if line == "" {
			// Blank lines are legal anywhere; a trailing newline yields a
			// final empty element.
			continue
		}
		if err := st.line(line); err != nil {
			return fmt.Errorf("line %d: %w: %q", i+1, err, line)
		}
	}
	return st.finish()
}

type bucketState struct {
	last     float64 // last cumulative bucket count
	infCount float64 // +Inf bucket, -1 until seen
	count    float64 // _count sample, -1 until seen
	hasInf   bool
	hasCount bool
}

type expoState struct {
	typed  map[string]string // metric -> TYPE
	helped map[string]bool
	seen   map[string]bool // metric (TYPE-name) with ≥1 sample
	bucket map[string]*bucketState
}

func (st *expoState) line(line string) error {
	if strings.HasPrefix(line, "#") {
		return st.comment(line)
	}
	return st.sample(line)
}

// comment handles "# HELP name text", "# TYPE name type", and free
// comments (anything after # that is not HELP/TYPE).
func (st *expoState) comment(line string) error {
	rest, ok := strings.CutPrefix(line, "# ")
	if !ok {
		// "#" alone or "#x": a free comment; legal.
		return nil
	}
	switch {
	case strings.HasPrefix(rest, "HELP "):
		fields := strings.SplitN(rest[len("HELP "):], " ", 2)
		name := fields[0]
		if !ValidMetricName(name) {
			return fmt.Errorf("invalid metric name %q in HELP", name)
		}
		if st.helped[name] {
			return fmt.Errorf("second HELP for metric %q", name)
		}
		st.helped[name] = true
		if len(fields) == 2 {
			if err := checkHelpEscapes(fields[1]); err != nil {
				return err
			}
		}
	case strings.HasPrefix(rest, "TYPE "):
		fields := strings.Fields(rest[len("TYPE "):])
		if len(fields) != 2 {
			return fmt.Errorf("TYPE wants 'name type'")
		}
		name, typ := fields[0], fields[1]
		if !ValidMetricName(name) {
			return fmt.Errorf("invalid metric name %q in TYPE", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if _, dup := st.typed[name]; dup {
			return fmt.Errorf("second TYPE for metric %q", name)
		}
		if st.seen[name] {
			return fmt.Errorf("TYPE for %q after its first sample", name)
		}
		st.typed[name] = typ
	}
	return nil
}

// checkHelpEscapes rejects backslash escapes HELP text may not contain
// (only \\ and \n are defined there).
func checkHelpEscapes(text string) error {
	for i := 0; i < len(text); i++ {
		if text[i] != '\\' {
			continue
		}
		if i+1 >= len(text) || (text[i+1] != '\\' && text[i+1] != 'n') {
			return fmt.Errorf("illegal escape in HELP text")
		}
		i++
	}
	return nil
}

// sample parses one sample line: name[{labels}] value [timestamp].
func (st *expoState) sample(line string) error {
	name, rest, labels, err := splitSample(line)
	if err != nil {
		return err
	}
	if !ValidMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 && len(fields) != 2 {
		return fmt.Errorf("want 'value' or 'value timestamp' after name")
	}
	val, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return fmt.Errorf("unparseable sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("unparseable timestamp %q", fields[1])
		}
	}

	// Resolve the metric this sample belongs to: histogram series fold
	// under their base name.
	base := name
	typ := st.typed[base]
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if b, ok := strings.CutSuffix(name, suf); ok && st.typed[b] == "histogram" {
			base, typ = b, "histogram"
			break
		}
	}
	st.seen[base] = true

	if typ == "histogram" {
		bs := st.bucket[base]
		if bs == nil {
			bs = &bucketState{}
			st.bucket[base] = bs
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("histogram bucket of %q without le label", base)
			}
			if _, err := strconv.ParseFloat(le, 64); err != nil {
				return fmt.Errorf("unparseable le %q", le)
			}
			if val < bs.last {
				return fmt.Errorf("histogram %q bucket counts not cumulative", base)
			}
			bs.last = val
			if le == "+Inf" {
				bs.infCount, bs.hasInf = val, true
			}
		case strings.HasSuffix(name, "_count"):
			bs.count, bs.hasCount = val, true
		}
	}
	return nil
}

// splitSample splits a sample line into name, the post-labels
// remainder, and the parsed label map.
func splitSample(line string) (name, rest string, labels map[string]string, err error) {
	brace := strings.IndexByte(line, '{')
	space := strings.IndexAny(line, " \t")
	if brace == -1 || (space != -1 && space < brace) {
		// No label set.
		if space == -1 {
			return "", "", nil, fmt.Errorf("sample without value")
		}
		return line[:space], line[space:], nil, nil
	}
	name = line[:brace]
	labels = map[string]string{}
	i := brace + 1
	for {
		// label name
		j := i
		for j < len(line) && line[j] != '=' && line[j] != '}' {
			j++
		}
		if j >= len(line) {
			return "", "", nil, fmt.Errorf("unterminated label set")
		}
		if line[j] == '}' {
			if strings.TrimSpace(line[i:j]) != "" {
				return "", "", nil, fmt.Errorf("label without value")
			}
			i = j + 1
			break
		}
		lname := strings.TrimSpace(line[i:j])
		if !validLabelName(lname) {
			return "", "", nil, fmt.Errorf("invalid label name %q", lname)
		}
		i = j + 1
		if i >= len(line) || line[i] != '"' {
			return "", "", nil, fmt.Errorf("label value of %q not quoted", lname)
		}
		val, next, verr := parseQuoted(line, i)
		if verr != nil {
			return "", "", nil, verr
		}
		if _, dup := labels[lname]; dup {
			return "", "", nil, fmt.Errorf("duplicate label %q", lname)
		}
		labels[lname] = val
		i = next
		if i < len(line) && line[i] == ',' {
			i++
			continue
		}
		if i < len(line) && line[i] == '}' {
			i++
			break
		}
		return "", "", nil, fmt.Errorf("expected ',' or '}' in label set")
	}
	return name, line[i:], labels, nil
}

// parseQuoted parses a double-quoted label value starting at line[i]
// (which must be '"'), returning the unescaped value and the index
// after the closing quote. Only \\, \n and \" escapes are legal.
func parseQuoted(line string, i int) (string, int, error) {
	var b strings.Builder
	for j := i + 1; j < len(line); j++ {
		switch line[j] {
		case '"':
			return b.String(), j + 1, nil
		case '\\':
			j++
			if j >= len(line) {
				return "", 0, fmt.Errorf("dangling escape in label value")
			}
			switch line[j] {
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case '"':
				b.WriteByte('"')
			default:
				return "", 0, fmt.Errorf("illegal escape \\%c in label value", line[j])
			}
		default:
			b.WriteByte(line[j])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// finish runs the whole-document checks that need every line first.
func (st *expoState) finish() error {
	for base, typ := range st.typed {
		if typ != "histogram" || !st.seen[base] {
			continue
		}
		bs := st.bucket[base]
		if bs == nil || !bs.hasInf {
			return fmt.Errorf("histogram %q has no +Inf bucket", base)
		}
		if bs.hasCount && bs.infCount != bs.count {
			return fmt.Errorf("histogram %q: +Inf bucket %g != count %g", base, bs.infCount, bs.count)
		}
	}
	return nil
}
