package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("x_total", "help"); again != c {
		t.Fatal("re-registration must return the same handle")
	}
	g := r.Gauge("g", "help")
	g.Set(2.5)
	g.Set(1.25)
	if got := g.Value(); got != 1.25 {
		t.Fatalf("gauge = %g, want 1.25", got)
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	var r *Registry
	if s := r.Snapshot(); len(s) != 0 {
		t.Fatalf("nil registry snapshot = %v, want empty", s)
	}
}

// Handles must be race-free: the sweep engine snapshots registries from
// the main goroutine while worker goroutines are still incrementing
// their own worlds' shared handles (spider-exp's parallel sub-runs).
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("racy_total", "")
	h := r.Histogram("racy_seconds", "", 0.5, 1, 2)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.75)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

// Bucket semantics are Prometheus `le`: an observation equal to a bound
// lands in that bound's bucket, one past the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", 1, 2, 4)
	for _, v := range []float64{0.5, 1, 1.5, 2, 4, 9} {
		h.Observe(v)
	}
	got := h.BucketCounts()
	want := []uint64{2, 2, 1, 1} // ≤1: {0.5,1}; ≤2: {1.5,2}; ≤4: {4}; +Inf: {9}
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 0.5+1+1.5+2+4+9 {
		t.Fatalf("sum = %g", h.Sum())
	}
}

func TestHistogramDefaultBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "")
	if len(h.Bounds()) != len(LatencyBuckets) {
		t.Fatalf("default bounds = %v, want LatencyBuckets", h.Bounds())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("m", "")
}

func TestCounterFuncAddsToSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mixed_total", "")
	c.Add(3)
	v := uint64(7)
	r.CounterFunc("mixed_total", "", func() float64 { return float64(v) })
	s := r.Snapshot()
	if len(s) != 1 || s[0].Value != 10 {
		t.Fatalf("snapshot = %+v, want single point value 10", s)
	}
	v = 9 // closures are read at snapshot time, not registration time
	if got := r.Snapshot()[0].Value; got != 12 {
		t.Fatalf("second snapshot = %g, want 12", got)
	}
}

func TestSnapshotIsNameSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz", "")
	r.Counter("aaa", "")
	r.Gauge("mmm", "")
	s := r.Snapshot()
	for i := 1; i < len(s); i++ {
		if s[i-1].Name > s[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", s[i-1].Name, s[i].Name)
		}
	}
}

func TestMergeSnapshots(t *testing.T) {
	mk := func(counter float64, gauge float64, obs ...float64) Snapshot {
		r := NewRegistry()
		r.Counter("c_total", "").Add(uint64(counter))
		r.Gauge("g", "").Set(gauge)
		h := r.Histogram("h_seconds", "", 1, 2)
		for _, v := range obs {
			h.Observe(v)
		}
		return r.Snapshot()
	}
	m := MergeSnapshots(mk(3, 1.0, 0.5), mk(4, 2.0, 1.5, 9))
	byName := map[string]MetricPoint{}
	for _, p := range m {
		byName[p.Name] = p
	}
	if got := byName["c_total"].Value; got != 7 {
		t.Fatalf("merged counter = %g, want 7", got)
	}
	if got := byName["g"].Value; got != 2.0 {
		t.Fatalf("merged gauge = %g, want last-wins 2.0", got)
	}
	h := byName["h_seconds"]
	if h.Count != 3 || h.Sum != 0.5+1.5+9 {
		t.Fatalf("merged histogram count=%d sum=%g, want 3 / 11", h.Count, h.Sum)
	}
	wantCounts := []uint64{1, 1, 1} // ≤1: 0.5; ≤2: 1.5; +Inf: 9
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Fatalf("merged bucket[%d] = %d, want %d", i, h.Counts[i], w)
		}
	}
}

// Two registries registering the same NAME as different kinds must
// merge under the first occurrence's kind — the explicit tie-break on
// equal keys. Folding by the incoming point's kind would make the
// accumulator's semantics (sum vs last-write) depend on which snapshot
// a point arrived in, so the merged value — and any archive built from
// it — would no longer be a pure function of the index-ordered inputs.
func TestMergeSnapshotsEqualNameKindTieBreak(t *testing.T) {
	counterSnap := func(v uint64) Snapshot {
		r := NewRegistry()
		r.Counter("clash", "").Add(v)
		return r.Snapshot()
	}
	gaugeSnap := func(v float64) Snapshot {
		r := NewRegistry()
		r.Gauge("clash", "").Set(v)
		return r.Snapshot()
	}

	// First occurrence is a counter: later gauge points fold as sums.
	m := MergeSnapshots(counterSnap(3), gaugeSnap(10), counterSnap(4))
	if len(m) != 1 || m[0].Kind != KindCounter {
		t.Fatalf("merge = %+v, want one counter point", m)
	}
	if m[0].Value != 17 {
		t.Fatalf("counter-first merge = %g, want 3+10+4 = 17 (first kind wins)", m[0].Value)
	}

	// First occurrence is a gauge: later counter points fold last-wins.
	m = MergeSnapshots(gaugeSnap(10), counterSnap(3), counterSnap(4))
	if len(m) != 1 || m[0].Kind != KindGauge {
		t.Fatalf("merge = %+v, want one gauge point", m)
	}
	if m[0].Value != 4 {
		t.Fatalf("gauge-first merge = %g, want last-wins 4", m[0].Value)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("spider_switches_total", "Channel switches.").Add(2)
	r.Gauge("sim_virtual_time_seconds", "Virtual clock.").Set(120.5)
	h := r.Histogram("spider_join_seconds", "Join durations.", 0.1, 1)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP spider_switches_total Channel switches.",
		"# TYPE spider_switches_total counter",
		"spider_switches_total 2",
		"# TYPE sim_virtual_time_seconds gauge",
		"sim_virtual_time_seconds 120.5",
		"# TYPE spider_join_seconds histogram",
		`spider_join_seconds_bucket{le="0.1"} 1`,
		`spider_join_seconds_bucket{le="1"} 2`, // cumulative: 0.05 + 0.5
		`spider_join_seconds_bucket{le="+Inf"} 3`,
		"spider_join_seconds_sum 3.55",
		"spider_join_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
