package obs

import (
	"os"
	"strings"
)

// WriteMetricsFile writes the snapshot to path in the Prometheus text
// exposition format.
func WriteMetricsFile(path string, s Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = s.WritePrometheus(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteTraceFile writes the tracer's retained events to path: JSONL
// when the path ends in .jsonl, Chrome trace_event JSON otherwise.
func WriteTraceFile(path string, tr *Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = tr.WriteJSONL(f)
	} else {
		err = tr.WriteChromeTrace(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
