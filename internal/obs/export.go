package obs

import (
	"os"
	"strings"
)

// WriteMetricsFile writes the snapshot to path in the Prometheus text
// exposition format.
func WriteMetricsFile(path string, s Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = s.WritePrometheus(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteTraceFile writes the tracer's retained events to path: JSONL
// when the path ends in .jsonl, Chrome trace_event JSON otherwise.
func WriteTraceFile(path string, tr *Tracer) error {
	return WriteTraceEventsFile(path, tr.Events())
}

// WriteTraceEventsFile is WriteTraceFile over an explicit event set
// (e.g. a multi-shard timeline assembled by MergeEvents).
func WriteTraceEventsFile(path string, events []TraceEvent) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = WriteEventsJSONL(f, events)
	} else {
		err = WriteEventsChromeTrace(f, events)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
