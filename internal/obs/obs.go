// Package obs is the observability layer: a metric registry
// (counters/gauges/histograms with Prometheus-style text export) and a
// ring-buffered structured event tracer (JSONL and Chrome trace_event
// export, loadable in chrome://tracing or Perfetto).
//
// Determinism contract: observation must never perturb a run. Nothing
// in this package draws randomness, schedules kernel events, or feeds
// values back into simulation logic; every hook in the stack guards its
// instrumentation behind a nil check so a run with observation off
// executes the exact instruction stream the uninstrumented build would.
// The scenario equivalence test (obs_equivalence_test.go) enforces
// byte-identical metrics with observation on vs. off, seed by seed.
//
// Concurrency: handles use atomics and the registry/tracer lock their
// internals, because spider-exp shares one Obs across the sub-runs of
// an experiment fanned out by the sweep engine. Counter and histogram
// merges are commutative sums, so a shared registry exports the same
// totals at any worker count; traces and gauges are only meaningful on
// single-worker (or single-run) sessions.
package obs

// Obs bundles the two observation surfaces a run wires through its
// stack. A nil *Obs (the default everywhere) disables observation at
// zero cost.
type Obs struct {
	Reg    *Registry
	Tracer *Tracer
}

// New creates an observation bundle with the given trace ring capacity
// (0 picks the default).
func New(traceCap int) *Obs {
	return &Obs{Reg: NewRegistry(), Tracer: NewTracer(traceCap)}
}
