package model

import (
	"math/rand"
	"testing"
	"time"
)

// randParams draws a paper-plausible parameter set: the switching delay,
// β bounds, and dwell time vary; the scheduling period, request spacing,
// and loss stay at the paper's values (D=500 ms, c=100 ms, h=10%).
func randParams(r *rand.Rand) (JoinParams, time.Duration) {
	p := JoinParams{
		D:       500 * time.Millisecond,
		C:       100 * time.Millisecond,
		W:       time.Duration(r.Float64() * 15 * float64(time.Millisecond)),
		BetaMin: time.Duration((0.2 + 1.3*r.Float64()) * float64(time.Second)),
		Loss:    0.10,
	}
	p.BetaMax = p.BetaMin + time.Duration((0.5+9.5*r.Float64())*float64(time.Second))
	dwell := time.Duration((1 + 7*r.Float64()) * float64(time.Second))
	return p, dwell
}

// TestJoinProbProperties checks, over randomized paper-plausible
// parameters, the invariants Eq. 7 must satisfy: probabilities stay in
// [0, 1], more time in range never hurts (monotone in dwell), and the
// closed form agrees with a direct Monte Carlo simulation of the same
// process within sampling tolerance.
func TestJoinProbProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	fracs := []float64{0.25, 0.50, 1.00}
	const trials = 4000
	// 3σ for a binomial proportion at p=0.5 with 4000 trials is ~0.024;
	// 0.05 leaves headroom for the model's discretization of rounds.
	const tol = 0.05
	for i := 0; i < 25; i++ {
		p, dwell := randParams(r)
		for _, f := range fracs {
			got := p.JoinProb(f, dwell)
			if got < 0 || got > 1 {
				t.Fatalf("case %d %+v f=%.2f dwell=%v: JoinProb=%v outside [0,1]", i, p, f, dwell, got)
			}

			longer := p.JoinProb(f, dwell+2*time.Second)
			if longer < got-1e-9 {
				t.Errorf("case %d %+v f=%.2f: JoinProb not monotone in dwell: %v at %v but %v at %v",
					i, p, f, got, dwell, longer, dwell+2*time.Second)
			}

			mc := p.SimulateJoinProb(rand.New(rand.NewSource(int64(1000*i)+int64(100*f))), f, dwell, trials)
			if diff := got - mc; diff < -tol || diff > tol {
				t.Errorf("case %d %+v f=%.2f dwell=%v: model %0.4f vs Monte Carlo %0.4f (|Δ|>%v)",
					i, p, f, dwell, got, mc, tol)
			}
		}
	}
}

// TestJoinProbMonotoneInFractionRandomized extends the fixed-parameter
// monotonicity check in model_test.go to randomized parameters: with
// everything else fixed, more time on the channel never lowers the join
// probability.
func TestJoinProbMonotoneInFractionRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 25; i++ {
		p, dwell := randParams(r)
		prev := 0.0
		for f := 0.1; f <= 1.0+1e-9; f += 0.1 {
			got := p.JoinProb(f, dwell)
			if got < prev-1e-9 {
				t.Fatalf("case %d %+v: JoinProb decreased from %v to %v as f rose to %.1f",
					i, p, prev, got, f)
			}
			prev = got
		}
	}
}
