// Package model implements the paper's analytical framework (§2.1): the
// probability that a mobile node joins an AP as a function of its channel
// schedule (Eqs. 5–7), a Monte Carlo simulation corroborating the
// derivation (Fig 2), the expected join time g_T(f), and the throughput
// maximization of Eqs. 8–10 whose solution exhibits the dividing speed
// (Fig 4): above roughly 10 m/s, all time should go to a single channel.
package model

import (
	"math"
	"math/rand"
	"time"
)

// JoinParams are the inputs of the join model.
type JoinParams struct {
	// D is the scheduling period.
	D time.Duration
	// W is the channel-switch delay w.
	W time.Duration
	// C is the spacing between consecutive join requests (set by DHCP and
	// link-layer timers; the paper uses 100 ms).
	C time.Duration
	// BetaMin/BetaMax bound the AP's response time: the join time in a
	// non-virtualized scenario is uniform in [BetaMin, BetaMax].
	BetaMin, BetaMax time.Duration
	// Loss is the per-message loss probability h.
	Loss float64
}

// PaperJoinParams returns the parameter set of Figs. 2 and 3:
// D=500 ms, w=7 ms, c=100 ms, βmin=500 ms, h=10%.
func PaperJoinParams(betaMax time.Duration) JoinParams {
	return JoinParams{
		D:       500 * time.Millisecond,
		W:       7 * time.Millisecond,
		C:       100 * time.Millisecond,
		BetaMin: 500 * time.Millisecond,
		BetaMax: betaMax,
		Loss:    0.10,
	}
}

func sec(d time.Duration) float64 { return d.Seconds() }

// RequestsPerRound returns the maximum number of join requests per round,
// ⌈D·f/c⌉ (§2.1.1).
func (p JoinParams) RequestsPerRound(f float64) int {
	if f <= 0 {
		return 0
	}
	return int(math.Ceil(sec(p.D) * f / sec(p.C)))
}

// QSegment evaluates Eq. 5: the probability that the request sent at the
// beginning of segment k (1-based) of round m leads to a successful join
// whose response lands in round n = m+gap, on a lossless channel.
func (p JoinParams) QSegment(f float64, gap, k int) float64 {
	if f <= 0 || gap < 0 || k < 1 {
		return 0
	}
	D, w, c := sec(p.D), sec(p.W), sec(p.C)
	alphaMin := float64(k)*c + sec(p.BetaMin)
	alphaMax := float64(k)*c + sec(p.BetaMax)
	deltaMin := float64(gap)*D + c - w
	deltaMax := (float64(gap)+f)*D + c - w
	if deltaMin > alphaMax || deltaMax < alphaMin {
		return 0
	}
	den := alphaMax - alphaMin
	if den <= 0 {
		// Degenerate β distribution: point mass at βmin.
		if alphaMin >= deltaMin && alphaMin <= deltaMax {
			return 1
		}
		return 0
	}
	return (math.Min(alphaMax, deltaMax) - math.Max(alphaMin, deltaMin)) / den
}

// RoundFailure evaluates Eq. 6: the probability that no request made in
// round m leads to a successful join in round m+gap, on a channel with
// message loss h (the request and the response must both survive, hence
// the (1−h)² factor).
func (p JoinParams) RoundFailure(f float64, gap int) float64 {
	k := p.RequestsPerRound(f)
	prob := 1.0
	through := (1 - p.Loss) * (1 - p.Loss)
	for i := 1; i <= k; i++ {
		prob *= 1 - p.QSegment(f, gap, i)*through
	}
	return prob
}

// JoinProb evaluates Eq. 7: the probability of obtaining at least one
// successful join during the first t seconds in range, when spending
// fraction f of each scheduling period on the AP's channel.
//
// Because RoundFailure depends only on the gap n−m, the double product
// over 1 ≤ m ≤ n ≤ M collapses to ∏_d Q(d)^(M−d).
func (p JoinParams) JoinProb(f float64, t time.Duration) float64 {
	m := p.rounds(t)
	if m <= 0 || f <= 0 {
		return 0
	}
	logFail := 0.0
	for gap := 0; gap < m; gap++ {
		q := p.RoundFailure(f, gap)
		if q <= 0 {
			return 1
		}
		logFail += float64(m-gap) * math.Log(q)
	}
	return 1 - math.Exp(logFail)
}

func (p JoinParams) rounds(t time.Duration) int {
	if t <= 0 || p.D <= 0 {
		return 0
	}
	return int(math.Ceil(sec(t) / sec(p.D)))
}

// ExpectedJoinTime computes g_T(f): the expected time to obtain a lease
// within a residence time of T, with failures charged the full T (a node
// that never joins extracts nothing, matching constraint 9's use of the
// quantity).
func (p JoinParams) ExpectedJoinTime(f float64, T time.Duration) time.Duration {
	m := p.rounds(T)
	if m <= 0 || f <= 0 {
		return T
	}
	var g float64
	prev := 0.0
	for i := 1; i <= m; i++ {
		t := time.Duration(i) * p.D
		if t > T {
			t = T
		}
		pi := p.JoinProb(f, t)
		g += (pi - prev) * sec(t)
		prev = pi
	}
	g += (1 - prev) * sec(T)
	return time.Duration(g * float64(time.Second))
}

// SimulateJoinProb corroborates Eq. 7 by direct simulation under the same
// assumptions (Fig 2): requests at segment starts, β ~ U[βmin, βmax],
// independent loss h on request and response, success iff the response
// lands inside an on-channel window.
func (p JoinParams) SimulateJoinProb(r *rand.Rand, f float64, t time.Duration, trials int) float64 {
	if trials <= 0 {
		return 0
	}
	m := p.rounds(t)
	k := p.RequestsPerRound(f)
	if m <= 0 || k <= 0 {
		return 0
	}
	D, w, c := sec(p.D), sec(p.W), sec(p.C)
	bmin, bmax := sec(p.BetaMin), sec(p.BetaMax)
	succ := 0
	for trial := 0; trial < trials; trial++ {
	rounds:
		for round := 0; round < m; round++ {
			for seg := 1; seg <= k; seg++ {
				if r.Float64() < p.Loss || r.Float64() < p.Loss {
					continue // request or response lost
				}
				beta := bmin + r.Float64()*(bmax-bmin)
				// Response offset within this round's frame of reference.
				resp := w + float64(seg-1)*c + beta
				// Success iff resp falls in [gap·D, gap·D + f·D] for some
				// gap ≥ 0 with round+gap < m (Eqs. 1–2).
				gap := math.Floor(resp / D)
				if round+int(gap) >= m {
					continue
				}
				frac := resp - gap*D
				if frac <= f*D {
					succ++
					break rounds
				}
			}
		}
	}
	return float64(succ) / float64(trials)
}
