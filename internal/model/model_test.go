package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestQSegmentBounds(t *testing.T) {
	p := PaperJoinParams(5 * time.Second)
	f := func(fi float64, gap, k uint8) bool {
		fi = math.Mod(math.Abs(fi), 1.0)
		q := p.QSegment(fi, int(gap%20), int(k%8)+1)
		return q >= 0 && q <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQSegmentDegenerateInputs(t *testing.T) {
	p := PaperJoinParams(5 * time.Second)
	if p.QSegment(0, 0, 1) != 0 || p.QSegment(0.5, -1, 1) != 0 || p.QSegment(0.5, 0, 0) != 0 {
		t.Fatal("degenerate inputs should give q=0")
	}
	// Point-mass β: response at exactly k·c + βmin.
	pp := p
	pp.BetaMax = pp.BetaMin
	got := pp.QSegment(1.0, 1, 1)
	if got != 1 {
		// β = 0.6s, window for gap 1 is [0.593, 1.093]: contains it.
		t.Fatalf("point-mass β q = %v, want 1", got)
	}
}

func TestRequestsPerRound(t *testing.T) {
	p := PaperJoinParams(5 * time.Second) // D=500ms, c=100ms
	cases := []struct {
		f    float64
		want int
	}{{0, 0}, {0.1, 1}, {0.2, 1}, {0.21, 2}, {0.5, 3}, {1, 5}}
	for _, c := range cases {
		if got := p.RequestsPerRound(c.f); got != c.want {
			t.Errorf("RequestsPerRound(%v) = %d, want %d", c.f, got, c.want)
		}
	}
}

func TestRoundFailureBounds(t *testing.T) {
	p := PaperJoinParams(5 * time.Second)
	for _, f := range []float64{0.1, 0.3, 0.5, 1} {
		for gap := 0; gap < 10; gap++ {
			q := p.RoundFailure(f, gap)
			if q < 0 || q > 1 {
				t.Fatalf("RoundFailure(%v,%d) = %v", f, gap, q)
			}
		}
	}
}

func TestJoinProbMonotoneInFraction(t *testing.T) {
	p := PaperJoinParams(5 * time.Second)
	prev := -1.0
	for f := 0.05; f <= 1.0; f += 0.05 {
		v := p.JoinProb(f, 4*time.Second)
		if v < 0 || v > 1 {
			t.Fatalf("JoinProb(%v) = %v out of range", f, v)
		}
		// Discontinuities from ⌈Df/c⌉ only ever jump upward.
		if v < prev-1e-9 {
			t.Fatalf("JoinProb not monotone at f=%v: %v < %v", f, v, prev)
		}
		prev = v
	}
}

func TestJoinProbMonotoneInTime(t *testing.T) {
	p := PaperJoinParams(5 * time.Second)
	prev := -1.0
	for s := 1; s <= 10; s++ {
		v := p.JoinProb(0.3, time.Duration(s)*time.Second)
		if v < prev-1e-9 {
			t.Fatalf("JoinProb not monotone in t at %ds", s)
		}
		prev = v
	}
}

func TestJoinProbPaperShape(t *testing.T) {
	// Fig 2 anchor points (βmax=5s): p(~0.1, 4s) around 0.2, p(1.0, 4s)
	// near 1, and a steep fall from ~75% to ~20% between f=0.3 and f=0.1
	// per §2.1.2's reading of the curve.
	p := PaperJoinParams(5 * time.Second)
	low := p.JoinProb(0.10, 4*time.Second)
	mid := p.JoinProb(0.30, 4*time.Second)
	high := p.JoinProb(1.0, 4*time.Second)
	if low < 0.08 || low > 0.40 {
		t.Fatalf("p(0.1,4s) = %v, expected ~0.2", low)
	}
	if mid < 0.5 || mid > 0.95 {
		t.Fatalf("p(0.3,4s) = %v, expected ~0.75", mid)
	}
	if high < 0.9 {
		t.Fatalf("p(1.0,4s) = %v, expected ≈1", high)
	}
	if !(high > mid && mid > low) {
		t.Fatalf("ordering broken: %v %v %v", low, mid, high)
	}
}

func TestJoinProbLargerBetaMaxIsWorse(t *testing.T) {
	// Fig 3: shorter maximum join times → higher join probability.
	p5 := PaperJoinParams(5 * time.Second)
	p10 := PaperJoinParams(10 * time.Second)
	for _, f := range []float64{0.1, 0.25, 0.5} {
		if p10.JoinProb(f, 4*time.Second) >= p5.JoinProb(f, 4*time.Second) {
			t.Fatalf("βmax=10s not worse than 5s at f=%v", f)
		}
	}
}

func TestJoinProbSwitchDelayMinorEffect(t *testing.T) {
	// §2.1.2: "even when there is no switching delay (w = 0), chances of
	// joining are not notably increased".
	pw := PaperJoinParams(5 * time.Second)
	p0 := pw
	p0.W = 0
	for _, f := range []float64{0.1, 0.5} {
		a := pw.JoinProb(f, 4*time.Second)
		b := p0.JoinProb(f, 4*time.Second)
		if math.Abs(a-b) > 0.10 {
			t.Fatalf("w=7ms vs w=0 differ too much at f=%v: %v vs %v", f, a, b)
		}
		if b < a-1e-9 {
			t.Fatalf("removing switch delay reduced join prob at f=%v", f)
		}
	}
}

func TestSimulationMatchesModel(t *testing.T) {
	// The Fig 2 corroboration: simulation within a few points of Eq. 7.
	p := PaperJoinParams(5 * time.Second)
	r := rand.New(rand.NewSource(42))
	for _, f := range []float64{0.1, 0.3, 0.5, 0.8, 1.0} {
		want := p.JoinProb(f, 4*time.Second)
		got := p.SimulateJoinProb(r, f, 4*time.Second, 20_000)
		if math.Abs(got-want) > 0.05 {
			t.Fatalf("f=%v: model %v vs simulation %v", f, want, got)
		}
	}
}

func TestSimulateDegenerate(t *testing.T) {
	p := PaperJoinParams(5 * time.Second)
	r := rand.New(rand.NewSource(1))
	if p.SimulateJoinProb(r, 0, 4*time.Second, 100) != 0 {
		t.Fatal("f=0 should never join")
	}
	if p.SimulateJoinProb(r, 0.5, 0, 100) != 0 {
		t.Fatal("t=0 should never join")
	}
	if p.SimulateJoinProb(r, 0.5, time.Second, 0) != 0 {
		t.Fatal("0 trials should be 0")
	}
}

func TestExpectedJoinTimeProperties(t *testing.T) {
	p := PaperJoinParams(10 * time.Second)
	T := 20 * time.Second
	g100 := p.ExpectedJoinTime(1.0, T)
	g10 := p.ExpectedJoinTime(0.1, T)
	if g100 <= 0 || g100 > T || g10 <= 0 || g10 > T {
		t.Fatalf("g out of range: %v %v", g100, g10)
	}
	if g100 >= g10 {
		t.Fatalf("more channel time should join faster: g(1)=%v g(0.1)=%v", g100, g10)
	}
	if p.ExpectedJoinTime(0, T) != T {
		t.Fatal("f=0 should cost the whole residence")
	}
}

func TestOptimizeSingleChannelFullyJoined(t *testing.T) {
	p := PaperJoinParams(10 * time.Second)
	s := Optimize(OptimizeInput{
		Join:     p,
		Channels: []ChannelOffer{{JoinedKbps: BwKbps}},
		T:        20 * time.Second,
	})
	// One channel with full joined bandwidth: near-total allocation minus
	// the switch overhead slot.
	if s.F[0] < 0.95 {
		t.Fatalf("single joined channel f = %v", s.F[0])
	}
	if s.AggregateKbps < 0.95*BwKbps {
		t.Fatalf("aggregate %v", s.AggregateKbps)
	}
}

func TestOptimizeRespectsOfferedCaps(t *testing.T) {
	p := PaperJoinParams(10 * time.Second)
	s := Optimize(OptimizeInput{
		Join:     p,
		Channels: []ChannelOffer{{JoinedKbps: 0.25 * BwKbps}, {JoinedKbps: 0.25 * BwKbps}},
		T:        20 * time.Second,
	})
	for i, f := range s.F {
		if f > 0.25+0.02 {
			t.Fatalf("channel %d exceeded offered cap: f=%v", i, f)
		}
	}
	if s.AggregateKbps < 0.45*BwKbps {
		t.Fatalf("two quarter-channels should aggregate ~half: %v", s.AggregateKbps)
	}
}

func TestFig4HighSpeedStaysOnJoinedChannel(t *testing.T) {
	// Scenario 1 at 20 m/s (T=10s): all bandwidth should come from the
	// already-joined channel.
	p := PaperJoinParams(10 * time.Second)
	chans := []ChannelOffer{{JoinedKbps: 0.75 * BwKbps}, {AvailKbps: 0.25 * BwKbps}}
	s := Optimize(OptimizeInput{Join: p, Channels: chans, T: 10 * time.Second, Step: 0.02})
	if s.F[1] > 0.03 {
		t.Fatalf("at 20 m/s the optimizer still switches: f2=%v", s.F[1])
	}
	if s.F[0] < 0.70 {
		t.Fatalf("joined channel underused: f1=%v", s.F[0])
	}
}

func TestFig4LowSpeedSwitches(t *testing.T) {
	// Scenario 2 at 2.5 m/s (T=80s): the second channel offers 75% of Bw;
	// switching must pay.
	p := PaperJoinParams(10 * time.Second)
	chans := []ChannelOffer{{JoinedKbps: 0.25 * BwKbps}, {AvailKbps: 0.75 * BwKbps}}
	s := Optimize(OptimizeInput{Join: p, Channels: chans, T: 80 * time.Second, Step: 0.02})
	if s.F[1] < 0.2 {
		t.Fatalf("at 2.5 m/s the optimizer refuses to switch: f2=%v (f1=%v)", s.F[1], s.F[0])
	}
}

func TestDividingSpeedNearPaperValue(t *testing.T) {
	// "users traveling at an average speed of 10 m/s or faster should form
	// concurrent Wi-Fi connections only within a single channel."
	p := PaperJoinParams(10 * time.Second)
	chans := []ChannelOffer{{JoinedKbps: 0.50 * BwKbps}, {AvailKbps: 0.50 * BwKbps}}
	v := DividingSpeed(p, chans, 100, 1, 40, 0.25)
	if v < 3 || v > 20 {
		t.Fatalf("dividing speed %v m/s outside plausible band around 10", v)
	}
}

func TestSweepSpeedsMonotoneSwitchShare(t *testing.T) {
	// As speed rises, the fraction given to the join channel must not rise.
	p := PaperJoinParams(10 * time.Second)
	chans := []ChannelOffer{{JoinedKbps: 0.50 * BwKbps}, {AvailKbps: 0.50 * BwKbps}}
	pts := SweepSpeeds(p, chans, 100, []float64{2.5, 5, 10, 20}, 0.02)
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	prev := math.Inf(1)
	for _, pt := range pts {
		f2 := pt.Schedule.F[1]
		if f2 > prev+0.05 {
			t.Fatalf("join-channel share rose with speed: %v", pts)
		}
		prev = f2
	}
}

func TestOptimizeThreeChannels(t *testing.T) {
	p := PaperJoinParams(10 * time.Second)
	s := Optimize(OptimizeInput{
		Join: p,
		Channels: []ChannelOffer{
			{JoinedKbps: 0.4 * BwKbps},
			{JoinedKbps: 0.3 * BwKbps},
			{JoinedKbps: 0.3 * BwKbps},
		},
		T:    30 * time.Second,
		Step: 0.05,
	})
	var sum float64
	for _, f := range s.F {
		sum += f
	}
	if sum > 1.0+1e-6 {
		t.Fatalf("schedule exceeds period: %v", s.F)
	}
	if s.AggregateKbps < 0.8*BwKbps {
		t.Fatalf("three joined channels aggregate only %v", s.AggregateKbps)
	}
}

func TestOptimizePanicsOnBadChannelCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Optimize(OptimizeInput{Join: PaperJoinParams(time.Second)})
}

func BenchmarkJoinProb(b *testing.B) {
	p := PaperJoinParams(10 * time.Second)
	for i := 0; i < b.N; i++ {
		p.JoinProb(0.3, 20*time.Second)
	}
}

func BenchmarkOptimizeTwoChannels(b *testing.B) {
	p := PaperJoinParams(10 * time.Second)
	chans := []ChannelOffer{{JoinedKbps: 0.5 * BwKbps}, {AvailKbps: 0.5 * BwKbps}}
	for i := 0; i < b.N; i++ {
		Optimize(OptimizeInput{Join: p, Channels: chans, T: 20 * time.Second, Step: 0.02})
	}
}
