package model

import (
	"math"
	"time"
)

// Bandwidth constants (kbps).
const (
	// BwKbps is the paper's wireless channel bandwidth Bw = 11 Mbps.
	BwKbps = 11_000
	// WiFiRangeM is the practical Wi-Fi range assumed in §2.1.3.
	WiFiRangeM = 100.0
)

// ChannelOffer describes the end-to-end bandwidth situation on one
// channel: Joined is B_j (APs the node already holds leases on), Avail is
// B_a (APs it would have to join, paying g_T(f) of dead time first).
type ChannelOffer struct {
	JoinedKbps float64
	AvailKbps  float64
}

// OptimizeInput bundles one optimization instance (Eqs. 8–10).
type OptimizeInput struct {
	Join     JoinParams
	BwKbps   float64
	Channels []ChannelOffer
	// T is the residence time: how long the node is in range of the APs.
	T time.Duration
	// Step is the grid resolution on each f_i (default 0.01).
	Step float64
}

// Schedule is the solver's output: the optimal fraction per channel and
// the bandwidth extracted from each.
type Schedule struct {
	F              []float64
	PerChannelKbps []float64
	AggregateKbps  float64
}

// Optimize solves Eqs. 8–10 by exhaustive grid search over channel
// fractions. The objective is T·Σ f_i·Bw; each f_i is capped by
// constraint (9), f_i ≤ (B_j + (1−g_T(f_i)/T)·B_a)/Bw, and the schedule
// must fit the period: Σ (f_i·D + ⌈f_i⌉·w) ≤ D.
//
// Supports up to three channels (the paper optimizes two; the evaluation
// schedules three). Complexity is (1/step)^(k−1) with the last channel's
// fraction taken greedily.
func Optimize(in OptimizeInput) Schedule {
	if in.BwKbps <= 0 {
		in.BwKbps = BwKbps
	}
	if in.Step <= 0 {
		in.Step = 0.01
	}
	k := len(in.Channels)
	if k == 0 || k > 3 {
		panic("model: Optimize supports 1–3 channels")
	}
	wFrac := sec(in.Join.W) / sec(in.Join.D)

	// cap returns the constraint-(9) ceiling for channel i at fraction f.
	gCache := map[int]map[float64]float64{}
	cap9 := func(i int, f float64) float64 {
		ch := in.Channels[i]
		c := ch.JoinedKbps / in.BwKbps
		if ch.AvailKbps > 0 {
			m, ok := gCache[i]
			if !ok {
				m = map[float64]float64{}
				gCache[i] = m
			}
			g, ok := m[f]
			if !ok {
				g = sec(in.Join.ExpectedJoinTime(f, in.T)) / sec(in.T)
				m[f] = g
			}
			c += (1 - g) * ch.AvailKbps / in.BwKbps
		}
		if c > 1 {
			c = 1
		}
		return c
	}

	best := Schedule{F: make([]float64, k), PerChannelKbps: make([]float64, k)}
	fs := make([]float64, k)

	var search func(i int, used float64)
	eval := func() {
		agg := 0.0
		for i, f := range fs {
			agg += f * in.BwKbps
			_ = i
		}
		if agg > best.AggregateKbps {
			best.AggregateKbps = agg
			copy(best.F, fs)
			for i, f := range fs {
				best.PerChannelKbps[i] = f * in.BwKbps
			}
		}
	}
	search = func(i int, used float64) {
		if i == k-1 {
			// Last channel: take the largest feasible fraction.
			budget := 1 - used - wFrac*switchCount(fs[:i], 1e-12)
			f := maxFeasible(budget, wFrac, func(f float64) float64 { return cap9(i, f) }, in.Step)
			fs[i] = f
			eval()
			return
		}
		for f := 0.0; f <= 1.0+1e-9; f += in.Step {
			if f > cap9(i, quantize(f, in.Step))+1e-9 {
				break
			}
			need := used + f
			if f > 0 {
				need += wFrac
			}
			if need > 1+1e-9 {
				break
			}
			fs[i] = f
			search(i+1, need)
		}
		fs[i] = 0
	}
	search(0, 0)
	return best
}

func quantize(f, step float64) float64 { return math.Round(f/step) * step }

func switchCount(fs []float64, eps float64) float64 {
	n := 0.0
	for _, f := range fs {
		if f > eps {
			n++
		}
	}
	return n
}

// maxFeasible finds the largest f ≤ budget−(w overhead if f>0) with
// f ≤ cap(f), scanning down from the budget on the step grid.
func maxFeasible(budget, wFrac float64, cap9 func(float64) float64, step float64) float64 {
	if budget <= 0 {
		return 0
	}
	top := budget - wFrac
	if top <= 0 {
		return 0
	}
	for f := quantize(top, step); f > 0; f -= step {
		if f <= cap9(f)+1e-9 && f <= top+1e-9 {
			return f
		}
	}
	return 0
}

// SpeedPoint is one speed's optimal schedule (a column of Fig 4).
type SpeedPoint struct {
	SpeedMS  float64
	Schedule Schedule
}

// SweepSpeeds solves the optimization at each speed, with residence time
// T = range/speed (the mean chord of a pass through the coverage disk is
// close to the radius once road offset is accounted for).
func SweepSpeeds(join JoinParams, channels []ChannelOffer, rangeM float64, speeds []float64, step float64) []SpeedPoint {
	if rangeM <= 0 {
		rangeM = WiFiRangeM
	}
	out := make([]SpeedPoint, 0, len(speeds))
	for _, s := range speeds {
		T := time.Duration(rangeM / s * float64(time.Second))
		sch := Optimize(OptimizeInput{Join: join, Channels: channels, T: T, Step: step})
		out = append(out, SpeedPoint{SpeedMS: s, Schedule: sch})
	}
	return out
}

// DividingSpeed returns the lowest speed (within [lo, hi], to the given
// resolution) at which the optimal schedule abandons the join channel —
// i.e. allocates (almost) nothing to any channel with only available
// (un-joined) bandwidth. Below it, switching pays; at and above it the
// node should stay put. The paper's headline: ~10 m/s for typical
// parameters.
func DividingSpeed(join JoinParams, channels []ChannelOffer, rangeM float64, lo, hi, resolution float64) float64 {
	if resolution <= 0 {
		resolution = 0.25
	}
	joinOnly := func(s Schedule) float64 {
		v := 0.0
		for i, ch := range channels {
			if ch.JoinedKbps == 0 && ch.AvailKbps > 0 {
				v += s.F[i]
			}
		}
		return v
	}
	at := func(speed float64) bool { // true = still worth switching
		T := time.Duration(rangeM / speed * float64(time.Second))
		sch := Optimize(OptimizeInput{Join: join, Channels: channels, T: T, Step: 0.02})
		return joinOnly(sch) > 0.02
	}
	if !at(lo) {
		return lo
	}
	if at(hi) {
		return hi
	}
	for hi-lo > resolution {
		mid := (lo + hi) / 2
		if at(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
