// Package spider is the public API of the Spider reproduction: a
// discrete-event study of concurrent Wi-Fi for mobile users after
// Soroush et al., "Concurrent Wi-Fi for Mobile Users: Analysis and
// Measurements" (ACM CoNEXT 2011).
//
// The package re-exports three layers:
//
//   - The analytical model of §2.1 (join probability, Eqs. 5–7; the
//     throughput-maximization of Eqs. 8–10; the dividing speed).
//   - The Spider driver and the simulation substrates it runs on
//     (radio medium, 802.11 MAC, DHCP, TCP, vehicular mobility),
//     composable into custom scenarios.
//   - The experiment harness that regenerates every table and figure of
//     the paper's evaluation.
//
// Quick start:
//
//	world, mob := spider.AmherstDrive(1).Build()
//	client := world.AddClient(
//	    spider.Defaults(spider.SingleChannelMultiAP, []spider.ChannelSlice{{Channel: 1}}),
//	    mob)
//	world.Run(10 * time.Minute)
//	fmt.Println(client.Rec.ThroughputKBps(10 * time.Minute))
package spider

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"spider/internal/core"
	"spider/internal/energy"
	"spider/internal/expt"
	"spider/internal/geo"
	"spider/internal/model"
	"spider/internal/pcap"
	"spider/internal/radio"
	"spider/internal/scenario"
	"spider/internal/selection"
	"spider/internal/sweep"
	"spider/internal/usertrace"
)

// ---- Driver (the paper's contribution) ----

// Driver modes and configuration (see internal/core for full docs).
type (
	// Mode selects the driver's scheduling/association policy.
	Mode = core.Mode
	// Config parameterizes the driver.
	Config = core.Config
	// ChannelSlice is one entry of a static channel schedule.
	ChannelSlice = core.ChannelSlice
	// Driver is the Spider driver instance.
	Driver = core.Driver
	// Iface is one virtual interface (one AP association).
	Iface = core.Iface
	// APRecord is the driver's knowledge about one discovered AP.
	APRecord = core.APRecord
)

// The four Spider configurations of the evaluation plus the stock
// baseline.
const (
	SingleChannelSingleAP = core.SingleChannelSingleAP
	SingleChannelMultiAP  = core.SingleChannelMultiAP
	MultiChannelMultiAP   = core.MultiChannelMultiAP
	MultiChannelSingleAP  = core.MultiChannelSingleAP
	StockWiFi             = core.StockWiFi
)

// Defaults returns Spider's tuned policy (reduced timers, lease cache,
// join-history selection) for a mode and schedule.
func Defaults(mode Mode, schedule []ChannelSlice) Config {
	return core.SpiderDefaults(mode, schedule)
}

// Stock returns the unmodified-driver baseline policy.
func Stock(schedule []ChannelSlice) Config { return core.StockDefaults(schedule) }

// EqualSchedule builds an equal static schedule over channels.
func EqualSchedule(dwell time.Duration, channels ...int) []ChannelSlice {
	return core.EqualSchedule(dwell, channels...)
}

// ---- Scenarios ----

// Scenario building blocks (see internal/scenario).
type (
	// World is one composed simulation.
	World = scenario.World
	// APSpec describes an access point to place.
	APSpec = scenario.APSpec
	// Client is a mobile node with the driver, metrics, and TCP glue.
	Client = scenario.Client
	// DriveSpec parameterizes a vehicular drive.
	DriveSpec = scenario.DriveSpec
	// CityGridSpec parameterizes a dense city-scale world.
	CityGridSpec = scenario.CityGridSpec
	// RadioConfig parameterizes the shared medium.
	RadioConfig = radio.Config
	// Point is a 2-D position in meters.
	Point = geo.Point
	// Mobility yields a position over virtual time.
	Mobility = geo.Mobility
	// Static is a non-moving Mobility.
	Static = geo.Static
	// RouteMobility follows a route at constant speed.
	RouteMobility = geo.RouteMobility
	// StopAndGo models downtown traffic: cruise, halt at lights, repeat.
	StopAndGo = geo.StopAndGo
	// Route is a polyline path in meters.
	Route = geo.Route
	// Workload selects a client's traffic pattern.
	Workload = scenario.Workload
	// BulkWorkload is the default unbounded download per association.
	BulkWorkload = scenario.BulkWorkload
	// WebWorkload is a page-fetch/think browsing loop.
	WebWorkload = scenario.WebWorkload
)

// DefaultWebWorkload browses 100 KB pages with ~2 s think times.
func DefaultWebWorkload() *WebWorkload { return scenario.DefaultWebWorkload() }

// RectLoop builds a closed rectangular loop route.
func RectLoop(w, h float64) *Route { return geo.RectLoop(w, h) }

// StraightRoad builds a straight route along the X axis.
func StraightRoad(length float64) *Route { return geo.StraightRoad(length) }

// NewWorld creates an empty world with the given seed and medium.
func NewWorld(seed int64, cfg RadioConfig) *World { return scenario.NewWorld(seed, cfg) }

// AmherstDrive returns the default vehicular scenario of the evaluation.
func AmherstDrive(seed int64) DriveSpec { return scenario.AmherstDrive(seed) }

// BostonDrive returns the external-validation drive.
func BostonDrive(seed int64) DriveSpec { return scenario.BostonDrive(seed) }

// CityGrid returns a dense 3×3 km urban world with the given AP and
// client populations — the scale the medium's spatial index is built for.
func CityGrid(seed int64, numAPs, numClients int) CityGridSpec {
	return scenario.CityGrid(seed, numAPs, numClients)
}

// StaticLab returns the Fig 9 micro-benchmark world.
func StaticLab(seed int64, backhaulKbps int, channels ...int) *World {
	return scenario.StaticLab(seed, backhaulKbps, channels...)
}

// Indoor returns the Figs 7/8 single-AP world.
func Indoor(seed int64, primaryChannel, backhaulKbps int) *World {
	return scenario.Indoor(seed, primaryChannel, backhaulKbps)
}

// DefaultRadio returns the paper's medium parameters (100 m range,
// h=10%, 11 Mbps).
func DefaultRadio() RadioConfig { return radio.Defaults() }

// ---- Analytical model (§2.1) ----

// Model types (see internal/model).
type (
	// JoinParams are the inputs of the join model (Eqs. 5–7).
	JoinParams = model.JoinParams
	// ChannelOffer is one channel's joined/available bandwidth.
	ChannelOffer = model.ChannelOffer
	// Schedule is the optimizer's output.
	Schedule = model.Schedule
	// OptimizeInput bundles one Eqs. 8–10 instance.
	OptimizeInput = model.OptimizeInput
)

// PaperJoinParams returns the parameter set of Figs. 2–3.
func PaperJoinParams(betaMax time.Duration) JoinParams { return model.PaperJoinParams(betaMax) }

// Optimize solves the throughput maximization of Eqs. 8–10.
func Optimize(in OptimizeInput) Schedule { return model.Optimize(in) }

// DividingSpeed finds the speed above which switching stops paying.
func DividingSpeed(join JoinParams, channels []ChannelOffer, rangeM, lo, hi, resolution float64) float64 {
	return model.DividingSpeed(join, channels, rangeM, lo, hi, resolution)
}

// BwKbps is the paper's wireless bandwidth Bw (11 Mbps).
const BwKbps = model.BwKbps

// ---- Parallel sweeps ----

// Sweep runs n independent replications concurrently on workers
// goroutines (0 = all CPUs) and returns their results indexed by
// replication, whatever order they finished in. Derive each
// replication's randomness from TaskSeed/SweepRNG — never a shared
// *rand.Rand — and the output is byte-identical at any worker count.
// See internal/sweep for the engine and docs/TUTORIAL.md §9 for usage.
func Sweep[T any](ctx context.Context, workers, n int, task func(ctx context.Context, rep int) (T, error)) ([]T, error) {
	return sweep.RunN(ctx, workers, n, task)
}

// TaskSeed derives replication rep of study id its own world seed: a
// SplitMix64-style hash of (base, id, rep), stable across runs and
// scheduling orders.
func TaskSeed(base int64, id string, rep int) int64 { return sweep.TaskSeed(base, id, rep) }

// SweepRNG returns a dedicated RNG stream seeded by TaskSeed, for
// randomness a replication needs outside a World.
func SweepRNG(base int64, id string, rep int) *rand.Rand { return sweep.RNG(base, id, rep) }

// ---- Experiments ----

// Experiment options (seed, scale, and parallelism: Workers bounds how
// many independent sub-runs execute concurrently, 0 = all CPUs; the
// value never affects results, only wall-clock time).
type ExperimentOptions = expt.Options

// Experiments lists the reproducible tables and figures.
func Experiments() []string { return expt.IDs() }

// RunExperiment regenerates one table or figure by id ("fig2" … "fig14",
// "table1" … "table4", "ablation-…").
func RunExperiment(id string, o ExperimentOptions) (fmt.Stringer, error) { return expt.Run(id, o) }

// ---- Energy accounting (§4.8 extension) ----

// Energy model types (see internal/energy).
type (
	// EnergyModel holds per-state power draws in watts.
	EnergyModel = energy.Model
	// EnergyReport is a consumed-energy breakdown in joules.
	EnergyReport = energy.Report
	// RadioAirtime is a radio's accumulated state occupancy.
	RadioAirtime = radio.Airtime
)

// DefaultEnergyModel returns Atheros-class power draws.
func DefaultEnergyModel() EnergyModel { return energy.DefaultModel() }

// ---- AP selection (the NP-hard formulation) ----

// Selection problem types (see internal/selection).
type (
	// SelectionProblem is one utility-maximizing AP-set instance.
	SelectionProblem = selection.Problem
	// SelectionCandidate is one joinable AP.
	SelectionCandidate = selection.Candidate
)

// SelectExact solves a selection instance exactly (≤ 24 candidates).
func SelectExact(p SelectionProblem) ([]int, float64) { return selection.Exact(p) }

// SelectGreedy runs the 1/2-approximate density greedy.
func SelectGreedy(p SelectionProblem) ([]int, float64) { return selection.Greedy(p) }

// ---- Trace capture ----

// PcapCapture accumulates over-the-air frames for pcap export.
type PcapCapture = pcap.Capture

// NewPcapCapture taps a world's medium (limit 0 = default bound).
func NewPcapCapture(w *World, limit int) *PcapCapture { return pcap.NewCapture(w.Medium, limit) }

// ---- User trace (§4.7 substitute) ----

// UserTraceSpec parameterizes the synthetic mesh-user demand trace.
type UserTraceSpec = usertrace.Spec

// UserTrace is a generated day of user flows.
type UserTrace = usertrace.Trace

// GenerateUserTrace builds the synthetic §4.7 dataset.
func GenerateUserTrace(spec UserTraceSpec) *UserTrace { return usertrace.Generate(spec) }
