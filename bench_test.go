package spider

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation. Each bench regenerates its experiment at a
// reduced scale and reports headline metrics the paper's claims hinge on
// as custom benchmark units, so `go test -bench=. -benchmem` doubles as
// a regression harness for the reproduction's shape:
//
//	BenchmarkTable2  …  4.1 spider-vs-stock-×
//
// Full-scale regeneration (paper-like durations) is cmd/spider-exp.

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"spider/internal/expt"
	"spider/internal/shard"
)

// benchOpts is the benchmark scale: small enough to iterate, large
// enough that the reported ratios are stable for the fixed seed.
func benchOpts() expt.Options { return expt.Options{Seed: 1, Scale: 0.12} }

func kbps(cell string) float64 {
	v, _ := strconv.ParseFloat(strings.TrimSuffix(cell, " KB/s"), 64)
	return v
}

func pct(cell string) float64 {
	v, _ := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	return v
}

func BenchmarkFig2JoinModel(b *testing.B) {
	var match float64
	for i := 0; i < b.N; i++ {
		fig := expt.Fig2(benchOpts())
		mod := fig.SeriesByName("Model (βmax=5s)")
		sim := fig.SeriesByName("Simulation (βmax=5s)")
		var maxDiff float64
		for j := range mod.Points {
			d := mod.Points[j].Y - sim.Points[j].Y
			if d < 0 {
				d = -d
			}
			if d > maxDiff {
				maxDiff = d
			}
		}
		match = maxDiff
	}
	b.ReportMetric(match, "max-model-sim-gap")
}

func BenchmarkFig3BetaMaxSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.Fig3(benchOpts())
	}
}

func BenchmarkFig4DividingSpeed(b *testing.B) {
	var ds float64
	for i := 0; i < b.N; i++ {
		res := expt.Fig4(benchOpts())
		ds = res.DividingSpeeds[1] // the 50/50 scenario
	}
	b.ReportMetric(ds, "dividing-speed-m/s")
}

func BenchmarkFig5AssocVsSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.Fig5(benchOpts())
	}
}

func BenchmarkFig6JoinVsSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.Fig6(benchOpts())
	}
}

func BenchmarkFig7TCPFraction(b *testing.B) {
	var full float64
	for i := 0; i < b.N; i++ {
		fig := expt.Fig7(benchOpts())
		pts := fig.Series[0].Points
		full = pts[len(pts)-1].Y
	}
	b.ReportMetric(full, "full-dwell-kbps")
}

func BenchmarkFig8TCPDwell(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		fig := expt.Fig8(benchOpts())
		pts := fig.Series[0].Points
		peak := 0.0
		for _, p := range pts {
			if p.Y > peak {
				peak = p.Y
			}
		}
		if last := pts[len(pts)-1].Y; last > 0 {
			ratio = peak / last
		}
	}
	b.ReportMetric(ratio, "peak-over-400ms-×")
}

func BenchmarkFig9Microbench(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		fig := expt.Fig9(benchOpts())
		two := fig.SeriesByName("two cards, stock").Points
		sp := fig.SeriesByName("Spider, (100,0,0)").Points
		rel = sp[len(sp)-1].Y / two[len(two)-1].Y
	}
	b.ReportMetric(rel, "spider-vs-two-cards")
}

func BenchmarkFig10ConnectivityCDFs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.Fig10(benchOpts())
	}
}

func BenchmarkFig11JoinVsTimeout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.Fig11(benchOpts())
	}
}

func BenchmarkFig12JoinPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.Fig12(benchOpts())
	}
}

func BenchmarkFig13UserConnections(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.Fig13(benchOpts())
	}
}

func BenchmarkFig14UserDisruptions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.Fig14(benchOpts())
	}
}

func BenchmarkTable1SwitchLatency(b *testing.B) {
	var base float64
	for i := 0; i < b.N; i++ {
		tbl := expt.Table1(benchOpts())
		base, _ = strconv.ParseFloat(tbl.Rows[0][1], 64)
	}
	b.ReportMetric(base, "bare-switch-ms")
}

func BenchmarkTable2Configurations(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		tbl := expt.Table2(benchOpts())
		multi := kbps(tbl.Cell("(1) Channel 1, Multi-AP", "Throughput"))
		single := kbps(tbl.Cell("(2) Channel 1, Single-AP", "Throughput"))
		if single > 0 {
			gain = multi / single
		}
	}
	b.ReportMetric(gain, "multi-vs-single-×")
}

func BenchmarkTable3DHCPFailures(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		tbl := expt.Table3(benchOpts())
		def := pct(tbl.Cell("Chan 1, default timer", "Failed dhcp"))
		red := pct(tbl.Cell("Chan 1, ll:100ms, dhcp:200ms", "Failed dhcp"))
		if def > 0 {
			ratio = red / def
		}
	}
	b.ReportMetric(ratio, "reduced-vs-default-fail-×")
}

func BenchmarkTable4ChannelCount(b *testing.B) {
	var connGain float64
	for i := 0; i < b.N; i++ {
		tbl := expt.Table4(benchOpts())
		c1 := pct(tbl.Cell("1 channel", "Connectivity"))
		c3 := pct(tbl.Cell("3 channels (equal schedule)", "Connectivity"))
		if c1 > 0 {
			connGain = c3 / c1
		}
	}
	b.ReportMetric(connGain, "3ch-connectivity-gain-×")
}

func BenchmarkAblationSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.AblationSelection(benchOpts())
	}
}

func BenchmarkAblationCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.AblationCache(benchOpts())
	}
}

func BenchmarkAblationChannel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.AblationChannel(benchOpts())
	}
}

func BenchmarkAblationDividing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.AblationDividing(benchOpts())
	}
}

func BenchmarkAblationAPCentric(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		tbl := expt.AblationAPCentric(benchOpts())
		// Ratio at the highest backhaul: the design choice at its sharpest.
		last := tbl.Rows[len(tbl.Rows)-1]
		worst, _ = strconv.ParseFloat(last[3], 64)
	}
	b.ReportMetric(worst, "spider-vs-fatvap-×")
}

func BenchmarkAblationEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.AblationEnergy(benchOpts())
	}
}

func BenchmarkAblationInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.AblationInterference(benchOpts())
	}
}

func BenchmarkAblationStopGo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.AblationStopGo(benchOpts())
	}
}

func BenchmarkAblationWeb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.AblationWeb(benchOpts())
	}
}

func BenchmarkAblationExactSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.AblationExactSelection(benchOpts())
	}
}

// BenchmarkSweepWorkers measures how a real experiment scales with the
// sweep engine's worker count. Fig12 fans six independent drive
// simulations out, so on an idle multicore machine the speedup from
// workers=1 to workers=4 should approach 4× (bounded by the six-way
// fan-out and the slowest drive). Output is bit-identical at every
// worker count — compare ns/op across the sub-benchmarks.
func BenchmarkSweepWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			o := benchOpts()
			o.Workers = w
			for i := 0; i < b.N; i++ {
				expt.Fig12(o)
			}
		})
	}
}

// BenchmarkSweepWorkersTable3 is the same scaling probe on a wider
// fan-out: Table3 flattens (6 rows × replications) into one sweep, so it
// keeps more than six workers busy.
func BenchmarkSweepWorkersTable3(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			o := benchOpts()
			o.Workers = w
			for i := 0; i < b.N; i++ {
				expt.Table3(o)
			}
		})
	}
}

// BenchmarkDriveSimulationRate measures raw simulator performance:
// virtual seconds of a full vehicular drive simulated per wall second.
func BenchmarkDriveSimulationRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		world, mob := AmherstDrive(int64(i + 1)).Build()
		c := world.AddClient(Defaults(MultiChannelMultiAP,
			EqualSchedule(200*time.Millisecond, 1, 6, 11)), mob)
		world.Run(time.Minute)
		_ = c
	}
	b.ReportMetric(60*float64(b.N)/b.Elapsed().Seconds(), "sim-s/wall-s")
}

// BenchmarkCityScale measures the city-scale speedup the spatial index
// buys: a 6×6 km city at the Amherst-like density of ~55 APs/km² —
// 2000 APs, 200 driving clients — simulated for two virtual seconds per
// iteration, with the indexed medium against the retained linear scan.
// Both paths produce byte-identical results (see the equivalence
// tests); only the wall clock differs. The per-client protocol work
// (driver, TCP, mobility) is a shared floor, so the ratio understates
// the medium-path speedup itself; see BenchmarkMediumBroadcast in
// internal/radio for the isolated number.
// BenchmarkCityScaleSharded measures what spatial sharding buys on top
// of the indexed medium: the same 6×6 km / 2000 AP / 200 client city,
// partitioned into lockstep tiles with the barrier exchange (halo
// beacons + client migration) between them. The tile layout is fixed by
// the scenario — "shards" only sets how many tiles advance concurrently
// — so every variant simulates byte-identical cities (see
// internal/shard's identity tests); only the wall clock differs. The
// "unsharded" variant is the monolithic single-kernel build from
// BenchmarkCityScale; shards=1 against it prices the sharding machinery
// itself (epoch chopping, halo mirroring, barrier scans), which the
// issue requires to stay within 5%.
//
// Each variant builds its city once and advances it 2 virtual seconds
// per iteration, with a warm-up outside the timer — so ns/op is
// steady-state simulation rate and allocs/op is the steady-state
// allocation budget (construction and pool warm-up excluded). BENCH_7
// tracks the allocs/op number: the pooled per-client stack holds it two
// orders of magnitude under the per-iteration-construction figure BENCH_5
// was taken with.
func BenchmarkCityScaleSharded(b *testing.B) {
	const virtual = 2 * time.Second
	const warmup = 4 * time.Second
	cfg := Defaults(MultiChannelMultiAP, EqualSchedule(200*time.Millisecond, 1, 6, 11))
	citySpec := func(seed int64) CityGridSpec {
		spec := CityGrid(seed, 2000, 200)
		spec.AreaW, spec.AreaH = 6000, 6000
		rc := DefaultRadio()
		rc.DataRateKbps = 24_000
		spec.Radio = rc
		return spec
	}
	b.Run("unsharded", func(b *testing.B) {
		world, mobs := citySpec(1).Build()
		for _, mob := range mobs {
			world.AddClient(cfg, mob)
		}
		world.Run(warmup)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			world.Run(warmup + time.Duration(i+1)*virtual)
		}
		b.ReportMetric(virtual.Seconds()*float64(b.N)/b.Elapsed().Seconds(), "sim-s/wall-s")
	})
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			city := shard.NewCity(citySpec(1), cfg, shards)
			if err := city.Run(warmup); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := city.Run(warmup + time.Duration(i+1)*virtual); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(virtual.Seconds()*float64(b.N)/b.Elapsed().Seconds(), "sim-s/wall-s")
		})
	}
}

// BenchmarkMetroScale is the ROADMAP north-star fixture: a 30×30 km
// metro — 50k APs, 100k clients on the survey channel mix — on one box.
// The 2-D load-aware layout carves it into ~75×75 tiles; the pooled
// per-client stack is what keeps 100k drivers' steady-state allocation
// near zero so the heap stays at the working set instead of growing
// with virtual time. Construction happens outside the timer; each
// iteration advances one virtual second. BENCH_7 records the results.
func BenchmarkMetroScale(b *testing.B) {
	const virtual = time.Second
	cfg := Defaults(MultiChannelMultiAP, EqualSchedule(200*time.Millisecond, 1, 6, 11))
	spec := CityGrid(1, 50_000, 100_000)
	spec.AreaW, spec.AreaH = 30_000, 30_000
	rc := DefaultRadio()
	rc.DataRateKbps = 24_000
	spec.Radio = rc
	city := shard.NewCity(spec, cfg, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := city.Run(time.Duration(i+1) * virtual); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(virtual.Seconds()*float64(b.N)/b.Elapsed().Seconds(), "sim-s/wall-s")
	b.ReportMetric(float64(city.Layout.NTiles), "tiles")
	b.ReportMetric(float64(city.Migrations)/float64(b.N), "migrations/op")
}

// BenchmarkMetroJoinStorm isolates the cold-start transient that
// BenchmarkMetroScale's first iteration pays: the full 30×30 km metro —
// 50k APs, 100k clients — built outside the timer, then advanced
// through exactly the first virtual second, during which every client
// scans, associates and DHCPs at once. Wall-clock and allocs for that
// window are the storm cost; BENCH_10.json records before/after rows
// for the burst-optimized kernel. Each iteration builds a fresh city
// (StopTimer) so b.N > 1 still measures a cold storm, not steady state.
func BenchmarkMetroJoinStorm(b *testing.B) {
	cfg := Defaults(MultiChannelMultiAP, EqualSchedule(200*time.Millisecond, 1, 6, 11))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		spec := CityGrid(1, 50_000, 100_000)
		spec.AreaW, spec.AreaH = 30_000, 30_000
		rc := DefaultRadio()
		rc.DataRateKbps = 24_000
		spec.Radio = rc
		city := shard.NewCity(spec, cfg, 0)
		b.StartTimer()
		if err := city.Run(time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "storm-s/wall-s")
}

// BenchmarkMetroSteadyState is the alloc regression gate for the pooled
// per-client stack: a small 2-D-tiled district of parked clients on a
// single-channel multi-AP schedule, warmed until every join and pool
// has settled, then advanced one virtual second per iteration. In
// steady state the per-client path — beacons, TCP segments and ACKs,
// DHCP renewals, scan ticks, halo mirrors — runs entirely on recycled
// objects, so allocs/op stays near zero regardless of client count; CI
// fails if it regresses above a small ceiling.
func BenchmarkMetroSteadyState(b *testing.B) {
	const warmup = 30 * time.Second
	const virtual = time.Second
	cfg := Defaults(MultiChannelMultiAP, EqualSchedule(200*time.Millisecond, 1))
	spec := CityGrid(1, 300, 500)
	spec.AreaW, spec.AreaH = 2000, 2000
	spec.SpeedMS = 0 // parked: steady state is pure protocol + traffic
	rc := DefaultRadio()
	rc.DataRateKbps = 24_000
	spec.Radio = rc
	city := shard.NewCity(spec, cfg, 0)
	if city.Layout.NTiles < 4 {
		b.Fatalf("fixture expects a 2-D grid, layout %v", city.Layout)
	}
	if err := city.Run(warmup); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := city.Run(warmup + time.Duration(i+1)*virtual); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(virtual.Seconds()*float64(b.N)/b.Elapsed().Seconds(), "sim-s/wall-s")
}

func BenchmarkCityScale(b *testing.B) {
	const virtual = 2 * time.Second
	for _, v := range []struct {
		name   string
		linear bool
	}{{"indexed", false}, {"linear", true}} {
		b.Run(v.name, func(b *testing.B) {
			cfg := Defaults(MultiChannelMultiAP, EqualSchedule(200*time.Millisecond, 1, 6, 11))
			for i := 0; i < b.N; i++ {
				spec := CityGrid(int64(i+1), 2000, 200)
				spec.AreaW, spec.AreaH = 6000, 6000
				rc := DefaultRadio()
				rc.DataRateKbps = 24_000
				rc.LinearScan = v.linear
				spec.Radio = rc
				world, mobs := spec.Build()
				for _, mob := range mobs {
					world.AddClient(cfg, mob)
				}
				world.Run(virtual)
			}
			b.ReportMetric(virtual.Seconds()*float64(b.N)/b.Elapsed().Seconds(), "sim-s/wall-s")
		})
	}
}
