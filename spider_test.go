package spider

import (
	"context"
	"testing"
	"time"
)

func TestFacadeQuickstartPath(t *testing.T) {
	world, mob := AmherstDrive(1).Build()
	client := world.AddClient(
		Defaults(SingleChannelMultiAP, []ChannelSlice{{Channel: 1}}), mob)
	world.Run(3 * time.Minute)
	if client.Rec.TotalBytes() == 0 {
		t.Fatal("quickstart drive transferred nothing")
	}
}

func TestFacadeModelPath(t *testing.T) {
	p := PaperJoinParams(10 * time.Second)
	if v := p.JoinProb(0.5, 4*time.Second); v <= 0 || v > 1 {
		t.Fatalf("JoinProb = %v", v)
	}
	s := Optimize(OptimizeInput{
		Join:     p,
		Channels: []ChannelOffer{{JoinedKbps: 0.5 * BwKbps}, {AvailKbps: 0.5 * BwKbps}},
		T:        10 * time.Second,
		Step:     0.05,
	})
	if s.AggregateKbps <= 0 {
		t.Fatal("optimizer returned nothing")
	}
	ds := DividingSpeed(p, []ChannelOffer{{JoinedKbps: 0.5 * BwKbps}, {AvailKbps: 0.5 * BwKbps}},
		100, 1, 40, 1)
	if ds < 1 || ds > 40 {
		t.Fatalf("dividing speed %v", ds)
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	ids := Experiments()
	if len(ids) < 17 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	res, err := RunExperiment("fig3", ExperimentOptions{Seed: 1, Scale: 0.2})
	if err != nil || res.String() == "" {
		t.Fatalf("fig3: %v", err)
	}
}

func TestFacadeUserTrace(t *testing.T) {
	tr := GenerateUserTrace(UserTraceSpec{Seed: 2, Users: 10, Day: time.Hour})
	if len(tr.Flows) == 0 {
		t.Fatal("empty trace")
	}
}

func TestFacadeLabWorlds(t *testing.T) {
	w := StaticLab(1, 2000, 1, 11)
	if len(w.APs) != 2 {
		t.Fatal("static lab APs")
	}
	w2 := Indoor(1, 6, 4000)
	if len(w2.APs) != 1 {
		t.Fatal("indoor AP")
	}
	if DefaultRadio().Range != 100 {
		t.Fatal("default radio range")
	}
	c := Stock(EqualSchedule(200*time.Millisecond, 1, 6, 11))
	if c.UseLeaseCache {
		t.Fatal("stock config has the lease cache on")
	}
}

func TestFacadeWebWorkload(t *testing.T) {
	world := NewWorld(5, DefaultRadio())
	world.AddAP(APSpec{Pos: Point{X: 20}, Channel: 6, BackhaulKbps: 4000})
	c := world.AddClient(Defaults(SingleChannelSingleAP, []ChannelSlice{{Channel: 6}}), Static{})
	c.SetWorkload(DefaultWebWorkload())
	world.Run(90 * time.Second)
	if c.Web.PagesCompleted == 0 {
		t.Fatal("no pages fetched through the facade")
	}
}

func TestFacadeStopAndGo(t *testing.T) {
	spec := AmherstDrive(6)
	world, _ := spec.Build()
	sg := &StopAndGo{
		Route:     RectLoop(spec.LoopW, spec.LoopH),
		SpeedMS:   10,
		StopEvery: 250,
		StopDur:   15 * time.Second,
		Loop:      true,
		Seed:      6,
	}
	c := world.AddClient(Defaults(SingleChannelMultiAP, []ChannelSlice{{Channel: 1}}), sg)
	world.Run(4 * time.Minute)
	if c.Rec.TotalBytes() == 0 {
		t.Fatal("stop-and-go facade drive moved no data")
	}
}

func TestFacadeEnergyAccounting(t *testing.T) {
	world := NewWorld(7, DefaultRadio())
	world.AddAP(APSpec{Pos: Point{X: 20}, Channel: 6})
	c := world.AddClient(Defaults(SingleChannelSingleAP, []ChannelSlice{{Channel: 6}}), Static{})
	world.Run(time.Minute)
	rep := DefaultEnergyModel().Account(c.Driver.Airtime(), time.Minute)
	if rep.Total() <= 0 {
		t.Fatal("no energy accounted")
	}
	if rep.Idle <= rep.Tx {
		t.Fatal("idle should dominate a one-minute association")
	}
}

func TestFacadeSelection(t *testing.T) {
	p := SelectionProblem{
		Candidates: []SelectionCandidate{
			{JoinProb: 0.9, JoinTime: time.Second, BandwidthKbps: 2000},
			{JoinProb: 0.5, JoinTime: 2 * time.Second, BandwidthKbps: 8000},
		},
		T: 20 * time.Second, Budget: 3 * time.Second, MaxAPs: 2,
	}
	_, exact := SelectExact(p)
	_, greedy := SelectGreedy(p)
	if exact <= 0 || greedy <= 0 || greedy > exact {
		t.Fatalf("exact=%v greedy=%v", exact, greedy)
	}
}

func TestFacadePcapCapture(t *testing.T) {
	world := NewWorld(8, DefaultRadio())
	cap := NewPcapCapture(world, 100)
	world.AddAP(APSpec{Pos: Point{X: 20}, Channel: 6})
	world.Run(2 * time.Second)
	if len(cap.Records) == 0 {
		t.Fatal("capture saw no beacons")
	}
}

func TestFacadeSweep(t *testing.T) {
	// The tutorial's §9 pattern: replicated mini-drives fanned out, with
	// per-replication seeds, identical at any worker count.
	run := func(workers int) []float64 {
		out, err := Sweep(context.Background(), workers, 3,
			func(_ context.Context, rep int) (float64, error) {
				world, mob := AmherstDrive(TaskSeed(5, "facade-sweep", rep)).Build()
				c := world.AddClient(Defaults(SingleChannelMultiAP,
					[]ChannelSlice{{Channel: 1}}), mob)
				world.Run(30 * time.Second)
				return c.Rec.ThroughputKBps(30 * time.Second), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq, par := run(1), run(4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("rep %d differs across worker counts: %v vs %v", i, seq[i], par[i])
		}
	}
	if TaskSeed(5, "facade-sweep", 0) == TaskSeed(5, "facade-sweep", 1) {
		t.Fatal("TaskSeed ignored the replication index")
	}
	if SweepRNG(5, "a", 0).Int63() == SweepRNG(5, "b", 0).Int63() {
		t.Fatal("SweepRNG ignored the study id")
	}
}
