// Handoff: drive repeated laps past the same access points and watch
// Spider's join machinery learn. Lap one pays full association + DHCP
// handshakes; later laps rejoin from the DHCP lease cache (REQUEST-first)
// and rank APs by join history, so handoffs get faster.
package main

import (
	"fmt"
	"time"

	"spider"
)

func main() {
	spec := spider.AmherstDrive(3)
	rc := spider.DefaultRadio()
	rc.DataRateKbps = 24_000
	rc.Loss = 0.08
	rc.EdgeStart = 0.55
	spec.Radio = rc
	world, mob := spec.Build()

	client := world.AddClient(
		spider.Defaults(spider.SingleChannelMultiAP, []spider.ChannelSlice{{Channel: 1}}),
		mob)

	// One lap of the 3.2 km loop at 10 m/s is 320 s.
	lap := 320 * time.Second
	fmt.Println("Repeated laps past the same channel-1 APs:")
	fmt.Printf("%-6s %8s %14s %12s %12s\n", "lap", "joins", "median join", "fast-path", "throughput")
	prevJoins := 0
	var prevFast uint64
	for lapN := 1; lapN <= 4; lapN++ {
		world.Run(time.Duration(lapN) * lap)
		joins := client.SuccessfulJoins()
		newJoins := joins[prevJoins:]
		med := time.Duration(0)
		if len(newJoins) > 0 {
			ds := make([]time.Duration, len(newJoins))
			for i, j := range newJoins {
				ds[i] = j.Elapsed
			}
			// crude median
			for i := 1; i < len(ds); i++ {
				for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
					ds[j], ds[j-1] = ds[j-1], ds[j]
				}
			}
			med = ds[len(ds)/2]
		}
		fast := client.Driver.Stats().FastPathJoins
		fmt.Printf("%-6d %8d %14s %12d %9.1f KB/s\n",
			lapN, len(newJoins), med.Round(time.Millisecond), fast-prevFast,
			client.Rec.ThroughputKBps(time.Duration(lapN)*lap))
		prevJoins = len(joins)
		prevFast = fast
	}

	fmt.Println("\nPer-AP history the selection heuristic has accumulated:")
	for _, r := range client.Driver.KnownAPs() {
		if r.Channel != 1 || r.Attempts == 0 {
			continue
		}
		fmt.Printf("  %s: %d/%d joins, avg %v, score %.2f\n",
			r.BSSID, r.Successes, r.Attempts, r.AvgJoin().Round(time.Millisecond), r.Score())
	}
}
