// Modelstudy: use the analytical framework (§2.1) directly — no
// simulation. Computes the join-probability surface of Eq. 7 and the
// dividing speed of the Eqs. 8–10 optimization for a range of offered
// bandwidth splits: the speed above which a mobile client should stop
// switching channels.
package main

import (
	"fmt"
	"time"

	"spider"
)

func main() {
	p := spider.PaperJoinParams(10 * time.Second)

	fmt.Println("Join probability p(f, t=4s) — Eq. 7, βmax=10s:")
	fmt.Printf("%8s", "f")
	for _, f := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		fmt.Printf("%8.2f", f)
	}
	fmt.Printf("\n%8s", "p")
	for _, f := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		fmt.Printf("%8.3f", p.JoinProb(f, 4*time.Second))
	}
	fmt.Println()
	fmt.Println("\n→ a mobile node must spend nearly all of its time on the")
	fmt.Println("  channel to be sure of joining within a short encounter.")

	fmt.Println("\nDividing speed by offered-bandwidth split (Eqs. 8–10):")
	fmt.Printf("%12s %12s %16s\n", "joined ch1", "avail ch2", "dividing speed")
	for _, split := range []struct{ j, a float64 }{
		{0.25, 0.75}, {0.50, 0.50}, {0.75, 0.25},
	} {
		chans := []spider.ChannelOffer{
			{JoinedKbps: split.j * spider.BwKbps},
			{AvailKbps: split.a * spider.BwKbps},
		}
		ds := spider.DividingSpeed(p, chans, 100, 1, 40, 0.25)
		fmt.Printf("%11.0f%% %11.0f%% %11.1f m/s\n", split.j*100, split.a*100, ds)
	}
	fmt.Println("\n→ faster than the dividing speed, all time should go to a")
	fmt.Println("  single channel: DHCP joins elsewhere can no longer pay off.")
}
