// Vehicular: the paper's core story in one program. Drive the same
// downtown loop with each of the four Spider configurations and the
// stock baseline, and watch the throughput/connectivity trade-off of
// Table 2 emerge: a single channel with concurrent APs maximizes
// throughput; slicing three channels maximizes connectivity; stock
// trails everything.
package main

import (
	"fmt"
	"time"

	"spider"
)

func main() {
	const (
		seed = 7
		dur  = 10 * time.Minute
	)
	one := []spider.ChannelSlice{{Channel: 1}}
	three := spider.EqualSchedule(200*time.Millisecond, 1, 6, 11)

	configs := []struct {
		name string
		cfg  spider.Config
	}{
		{"single channel, multi-AP ", spider.Defaults(spider.SingleChannelMultiAP, one)},
		{"single channel, stock    ", spider.Stock(one)},
		{"three channels, multi-AP ", spider.Defaults(spider.MultiChannelMultiAP, three)},
		{"three channels, single-AP", spider.Defaults(spider.MultiChannelSingleAP, three)},
		{"stock roaming (MadWiFi)  ", spider.Stock(three)},
	}

	fmt.Printf("Amherst loop, %v at 10 m/s, seed %d\n\n", dur, seed)
	fmt.Printf("%-26s %12s %14s %8s\n", "configuration", "throughput", "connectivity", "joins")
	for _, c := range configs {
		spec := spider.AmherstDrive(seed)
		rc := spider.DefaultRadio()
		rc.DataRateKbps = 24_000
		rc.Loss = 0.08
		rc.EdgeStart = 0.55
		spec.Radio = rc
		world, mob := spec.Build()
		client := world.AddClient(c.cfg, mob)
		world.Run(dur)
		fmt.Printf("%-26s %9.1f KB/s %12.1f%% %8d\n",
			c.name,
			client.Rec.ThroughputKBps(dur),
			100*client.Rec.Connectivity(dur),
			client.Driver.Stats().JoinSuccesses)
	}
	fmt.Println("\nAt vehicular speed, aggregate one channel for throughput;")
	fmt.Println("slice channels only when coverage matters more than rate.")
}
