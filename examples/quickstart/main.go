// Quickstart: build a small world with two open APs on one channel, run
// Spider against it for a minute of virtual time, and print what it
// achieved. This is the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"time"

	"spider"
)

func main() {
	// A stationary client with two APs in range on channel 6 — the Fig 9
	// "aggregate two backhauls on one channel" situation.
	world := spider.NewWorld(42, spider.DefaultRadio())
	world.AddAP(spider.APSpec{Pos: spider.Point{X: 20}, Channel: 6, BackhaulKbps: 2000})
	world.AddAP(spider.APSpec{Pos: spider.Point{X: 30}, Channel: 6, BackhaulKbps: 2000})

	client := world.AddClient(
		spider.Defaults(spider.SingleChannelMultiAP, []spider.ChannelSlice{{Channel: 6}}),
		spider.Static{P: spider.Point{}})

	const dur = time.Minute
	world.Run(dur)

	fmt.Println("Spider quickstart — one channel, two APs, one radio")
	fmt.Printf("  concurrent associations: %d\n", client.Driver.ConnectedCount())
	fmt.Printf("  aggregate throughput:    %.1f KB/s (two 2 Mbps backhauls)\n",
		client.Rec.ThroughputKBps(dur))
	fmt.Printf("  connectivity:            %.1f%%\n", 100*client.Rec.Connectivity(dur))
	for _, ifc := range client.Driver.Interfaces() {
		fmt.Printf("  iface %s ch=%d ip=%s state=%s\n",
			ifc.BSSID(), ifc.Channel(), ifc.IP(), ifc.State())
	}
}
