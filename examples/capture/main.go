// Capture: tap a drive's over-the-air traffic, write it as a pcap file,
// and summarize the protocol mix in-process — the programmatic version
// of `spider-sim -pcap` + `spider-pcap`.
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"spider"
	"spider/internal/wifi"
)

func main() {
	spec := spider.AmherstDrive(12)
	world, mob := spec.Build()
	cap := spider.NewPcapCapture(world, 200_000)
	world.AddClient(
		spider.Defaults(spider.MultiChannelMultiAP, spider.EqualSchedule(200*time.Millisecond, 1, 6, 11)),
		mob)
	world.Run(2 * time.Minute)

	byType := map[wifi.FrameType]int{}
	for _, rec := range cap.Records {
		if f, err := wifi.Decode(rec.Data); err == nil {
			byType[f.Type]++
		}
	}
	fmt.Printf("captured %d frames in 2 simulated minutes (dropped %d)\n\n", len(cap.Records), cap.Dropped)
	type row struct {
		t wifi.FrameType
		n int
	}
	var rows []row
	for t, n := range byType {
		rows = append(rows, row{t, n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	for _, r := range rows {
		fmt.Printf("  %-12s %6d\n", r.t, r.n)
	}

	out := "drive.pcap"
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	n, err := cap.Dump(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %d frames to %s — inspect with `go run ./cmd/spider-pcap %s`\n", n, out, out)
}
