// Command spider-diff compares two run archives.
//
// Usage:
//
//	spider-diff a.json b.json
//	spider-diff -stat [-tol 0.25] [-field-tol client.total_bytes=0.05] a.json b.json
//
// The default byte-level mode is the determinism gate: archives written
// from the same seed and config must be byte-identical regardless of
// -workers/-shards, and any divergence is reported against the
// sub-measurement ID that changed. The -stat mode compares archives
// from different seeds: numeric observations are grouped by field and
// the means compared under per-field relative tolerances, so ordinary
// seed noise passes while a shifted distribution is flagged.
//
// Exit codes (for CI gating):
//
//	0  identical (byte mode) / all fields within tolerance (stat mode)
//	1  differences found / a field shifted beyond tolerance
//	2  usage or I/O error
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"spider/internal/archive"
)

func main() {
	var (
		stat     = flag.Bool("stat", false, "statistical mode: compare field means under tolerances instead of bytes")
		tol      = flag.Float64("tol", 0.25, "default relative tolerance in -stat mode")
		fieldTol = flag.String("field-tol", "", "comma-separated per-field tolerances, e.g. client.total_bytes=0.05,result.drive.connectivity=0.1")
		quiet    = flag.Bool("q", false, "suppress per-field ok lines in -stat mode")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "spider-diff: need exactly two archive files")
		flag.Usage()
		os.Exit(2)
	}
	abytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "spider-diff:", err)
		os.Exit(2)
	}
	bbytes, err := os.ReadFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "spider-diff:", err)
		os.Exit(2)
	}

	if *stat {
		os.Exit(runStat(abytes, bbytes, *tol, *fieldTol, *quiet))
	}
	os.Exit(runBytes(abytes, bbytes))
}

func runBytes(abytes, bbytes []byte) int {
	rep, err := archive.DiffBytes(abytes, bbytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spider-diff:", err)
		return 2
	}
	if rep.Identical {
		fmt.Println("identical")
		return 0
	}
	for _, d := range rep.Diffs {
		fmt.Println(d)
	}
	if rep.Truncated {
		fmt.Println("... further differences truncated")
	}
	fmt.Printf("spider-diff: %d differences\n", len(rep.Diffs))
	return 1
}

func runStat(abytes, bbytes []byte, tol float64, fieldTol string, quiet bool) int {
	a, err := archive.Decode(abytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spider-diff: archive A:", err)
		return 2
	}
	b, err := archive.Decode(bbytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spider-diff: archive B:", err)
		return 2
	}
	opt := archive.StatOptions{DefaultTol: tol, Tol: map[string]float64{}}
	if fieldTol != "" {
		for _, kv := range strings.Split(fieldTol, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "spider-diff: bad -field-tol entry %q (want field=tol)\n", kv)
				return 2
			}
			t, err := strconv.ParseFloat(v, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spider-diff: bad tolerance in %q: %v\n", kv, err)
				return 2
			}
			opt.Tol[strings.TrimSpace(k)] = t
		}
	}
	flagged := 0
	for _, f := range archive.DiffStat(a, b, opt) {
		if f.Flagged {
			flagged++
		}
		if f.Flagged || !quiet {
			fmt.Println(f)
		}
	}
	if flagged > 0 {
		fmt.Printf("spider-diff: %d fields shifted beyond tolerance\n", flagged)
		return 1
	}
	fmt.Println("within tolerance")
	return 0
}
