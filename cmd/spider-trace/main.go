// Command spider-trace generates and summarizes the synthetic mesh-user
// demand trace that substitutes for the paper's §4.7 dataset (one day of
// TCP flows from 161 users of a downtown mesh).
//
// Usage:
//
//	spider-trace                  # default spec, summary + CDF milestones
//	spider-trace -users 50 -seed 9
package main

import (
	"flag"
	"fmt"
	"time"

	"spider/internal/metrics"
	"spider/internal/usertrace"
)

func main() {
	var (
		seed  = flag.Int64("seed", 1, "trace seed")
		users = flag.Int("users", 161, "number of users")
		hours = flag.Int("hours", 24, "observation window in hours")
	)
	flag.Parse()

	spec := usertrace.DefaultSpec(*seed)
	spec.Users = *users
	spec.Day = time.Duration(*hours) * time.Hour
	tr := usertrace.Generate(spec)

	fmt.Printf("Synthetic mesh-user trace (seed %d)\n", *seed)
	fmt.Printf("  users:        %d over %v\n", spec.Users, spec.Day)
	fmt.Printf("  TCP flows:    %d (%.0f%% HTTP)\n", len(tr.Flows), 100*tr.HTTPShare())
	fmt.Printf("  volume:       %.2f GB\n", float64(tr.TotalBytes())/1e9)

	durs := metrics.DurationsCDF(tr.Durations())
	gaps := metrics.DurationsCDF(tr.InterConnectionGaps())
	fmt.Println("\n  connection duration (s):   p25     p50     p75     p90     p99")
	fmt.Printf("  %25s", "")
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9, 0.99} {
		fmt.Printf("%8.1f", durs.Quantile(q))
	}
	fmt.Println("\n  inter-connection gap (s):  p25     p50     p75     p90     p99")
	fmt.Printf("  %25s", "")
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9, 0.99} {
		fmt.Printf("%8.1f", gaps.Quantile(q))
	}
	fmt.Println()
	fmt.Printf("\n  share of flows under 100 s:   %.1f%% (Fig 13's x-range)\n", 100*durs.At(100))
	fmt.Printf("  share of gaps under 300 s:    %.1f%% (Fig 14's x-range)\n", 100*gaps.At(300))
}
