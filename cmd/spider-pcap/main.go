// Command spider-pcap dissects capture files written by spider-sim
// (-pcap): per-frame-type counts, airtime shares, the busiest stations,
// and optionally a frame-by-frame listing.
//
// Usage:
//
//	spider-pcap trace.pcap
//	spider-pcap -v trace.pcap | head
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"spider/internal/pcap"
	"spider/internal/wifi"
)

func main() {
	verbose := flag.Bool("v", false, "list every frame")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: spider-pcap [-v] <file.pcap>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "spider-pcap:", err)
		os.Exit(1)
	}
	defer f.Close()
	recs, err := pcap.ReadAll(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spider-pcap:", err)
		os.Exit(1)
	}
	if len(recs) == 0 {
		fmt.Println("empty capture")
		return
	}

	byType := map[wifi.FrameType]int{}
	bytesByType := map[wifi.FrameType]int{}
	bySrc := map[wifi.Addr]int{}
	undecodable := 0
	for _, rec := range recs {
		frame, err := wifi.Decode(rec.Data)
		if err != nil {
			undecodable++
			continue
		}
		byType[frame.Type]++
		bytesByType[frame.Type] += len(rec.Data)
		bySrc[frame.SA]++
		if *verbose {
			fmt.Printf("%12v  %s\n", rec.At, frame)
		}
	}

	span := recs[len(recs)-1].At - recs[0].At
	fmt.Printf("%d frames over %v", len(recs), span.Round(time.Millisecond))
	if undecodable > 0 {
		fmt.Printf(" (%d undecodable)", undecodable)
	}
	fmt.Println()

	type row struct {
		t wifi.FrameType
		n int
	}
	var rows []row
	for t, n := range byType {
		rows = append(rows, row{t, n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	fmt.Printf("\n%-12s %8s %12s\n", "type", "frames", "bytes")
	for _, r := range rows {
		fmt.Printf("%-12s %8d %12d\n", r.t, r.n, bytesByType[r.t])
	}

	type srcRow struct {
		a wifi.Addr
		n int
	}
	var srcs []srcRow
	for a, n := range bySrc {
		srcs = append(srcs, srcRow{a, n})
	}
	sort.Slice(srcs, func(i, j int) bool {
		if srcs[i].n != srcs[j].n {
			return srcs[i].n > srcs[j].n
		}
		return srcs[i].a.String() < srcs[j].a.String()
	})
	fmt.Printf("\nbusiest stations:\n")
	for i, s := range srcs {
		if i >= 5 {
			break
		}
		fmt.Printf("  %s  %d frames\n", s.a, s.n)
	}
}
