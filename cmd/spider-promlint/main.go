// Command spider-promlint validates a Prometheus text-exposition
// document — the repo's stand-in for `promtool check metrics`, used by
// the supervisor-smoke CI job to prove a live /metrics scrape parses.
//
// Usage:
//
//	spider-promlint metrics.prom     # or read stdin with no argument
//
// Exit status: 0 when the document parses under the strict exposition
// checker (internal/obs.CheckExposition), 1 with the offending line on
// stderr otherwise.
package main

import (
	"fmt"
	"io"
	"os"

	"spider/internal/obs"
)

func main() {
	var (
		data []byte
		err  error
		src  = "stdin"
	)
	switch len(os.Args) {
	case 1:
		data, err = io.ReadAll(os.Stdin)
	case 2:
		src = os.Args[1]
		data, err = os.ReadFile(src)
	default:
		fmt.Fprintln(os.Stderr, "usage: spider-promlint [file]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spider-promlint:", err)
		os.Exit(1)
	}
	if err := obs.CheckExposition(data); err != nil {
		fmt.Fprintf(os.Stderr, "spider-promlint: %s: %v\n", src, err)
		os.Exit(1)
	}
	fmt.Printf("%s: ok\n", src)
}
