package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"spider/internal/archive"
)

// A campaign state file makes a multi-experiment archived run
// crash-resumable at experiment granularity: after each experiment
// completes, the partial archive and the completed-id list are
// persisted atomically. A rerun with -resume pointing at the file skips
// everything it records and continues from the first missing
// experiment; the final archive is byte-identical to an uninterrupted
// run of the same flags.
const (
	campaignFormat  = "spider-exp-campaign"
	campaignVersion = 1
)

type campaignState struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// ConfigFP fingerprints the campaign identity (seed, scale, chaos,
	// the -id list): a state file never resumes a different campaign.
	ConfigFP  string           `json:"config_fp"`
	Completed []string         `json:"completed"`
	Archive   *archive.Archive `json:"archive"`
}

// loadCampaign reads the state file, returning a fresh state when the
// file does not exist yet.
func loadCampaign(path, fp string) (*campaignState, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return &campaignState{Format: campaignFormat, Version: campaignVersion, ConfigFP: fp}, nil
	}
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s campaignState
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("campaign state %s: %w", path, err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("campaign state %s: trailing data", path)
	}
	if s.Format != campaignFormat || s.Version != campaignVersion {
		return nil, fmt.Errorf("campaign state %s: format %q v%d unsupported", path, s.Format, s.Version)
	}
	if s.ConfigFP != fp {
		return nil, fmt.Errorf("campaign state %s: recorded campaign %s, flags describe %s (delete the file to start over)",
			path, s.ConfigFP, fp)
	}
	return &s, nil
}

// done reports whether the experiment already completed in a prior run.
func (s *campaignState) done(id string) bool {
	for _, c := range s.Completed {
		if c == id {
			return true
		}
	}
	return false
}

// skippedResult stands in for an experiment the campaign state already
// holds: the archived document is reused verbatim, only the textual
// report is unavailable without rerunning.
type skippedResult string

func (s skippedResult) String() string {
	return fmt.Sprintf("[%s already archived by an earlier run of this campaign; skipped]", string(s))
}

// save persists the state atomically (temp file + rename), so a crash
// mid-save leaves the previous state intact.
func (s *campaignState) save(path string) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "\t")
	if err := enc.Encode(s); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
