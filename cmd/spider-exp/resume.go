package main

import (
	"fmt"

	"spider/internal/campaign"
)

// A campaign state file makes a multi-experiment archived run
// crash-resumable at experiment granularity: after each experiment
// completes, the partial archive and the completed-id list are
// persisted atomically and durably (internal/campaign over
// internal/atomicfile). A rerun with -resume pointing at the file skips
// everything it records and continues from the first missing
// experiment; the final archive is byte-identical to an uninterrupted
// run of the same flags.
const (
	campaignFormat  = "spider-exp-campaign"
	campaignVersion = 1
)

// campaignState is the CLI's on-disk envelope around the shared
// resumable core. The embedded fields inline, so the file format is
// unchanged from before the extraction.
type campaignState struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	campaign.State
}

// loadCampaign reads the state file, returning a fresh state when the
// file does not exist yet.
func loadCampaign(path, fp string) (*campaignState, error) {
	var s campaignState
	ok, err := campaign.LoadFile(path, &s)
	if err != nil {
		return nil, err
	}
	if !ok {
		s = campaignState{Format: campaignFormat, Version: campaignVersion}
		s.ConfigFP = fp
		return &s, nil
	}
	if s.Format != campaignFormat || s.Version != campaignVersion {
		return nil, fmt.Errorf("campaign state %s: format %q v%d unsupported", path, s.Format, s.Version)
	}
	if err := s.Verify(fp); err != nil {
		return nil, fmt.Errorf("campaign state %s: %w", path, err)
	}
	return &s, nil
}

// skippedResult stands in for an experiment the campaign state already
// holds: the archived document is reused verbatim, only the textual
// report is unavailable without rerunning.
type skippedResult string

func (s skippedResult) String() string {
	return fmt.Sprintf("[%s already archived by an earlier run of this campaign; skipped]", string(s))
}

// save persists the state atomically and durably, so a crash at any
// instant leaves either the previous state or the new one.
func (s *campaignState) save(path string) error {
	return campaign.WriteFile(path, s)
}
