// Command spider-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	spider-exp -list
//	spider-exp -id table2 [-seed 1] [-scale 1.0]
//	spider-exp -id fig2,fig3 -scale 0.25
//	spider-exp -id all -scale 0.25 -archive-out run.json -resume run.campaign
//
// Scale 1.0 runs paper-like durations (a 40-minute drive per
// configuration); smaller scales shrink durations and trial counts
// proportionally. Output is the same rows/series the paper reports.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"spider/internal/archive"
	"spider/internal/expt"
	"spider/internal/obs"
	"spider/internal/prof"
	"spider/internal/sweep"
)

func main() {
	var (
		id       = flag.String("id", "", "experiment id (fig2…fig14, table1…table4, ablation-…, or 'all')")
		seed     = flag.Int64("seed", 1, "simulation seed")
		scale    = flag.Float64("scale", 1.0, "experiment scale in (0,1]")
		workers  = flag.Int("workers", runtime.NumCPU(), "worker goroutines for parallel sub-runs (results are identical at any count)")
		shards   = flag.Int("shards", 1, "worker goroutines advancing city tiles in the sharded city experiment (results are identical at any count)")
		chaos    = flag.String("chaos", "", "fault profile or timeline for the chaos experiment (mild, aggressive, or a script)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		plotOut  = flag.Bool("plot", false, "render figures as terminal charts instead of data columns")
		svgDir   = flag.String("svg", "", "also write each figure as an SVG into this directory")
		csvDir   = flag.String("csv", "", "also write each figure's series as CSV into this directory")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		metricsO = flag.String("metrics-out", "", "write Prometheus-format metrics (accumulated across all runs) to this file")
		traceO   = flag.String("trace-out", "", "write the event trace to this file: .jsonl for JSONL, else Chrome trace JSON (forces -workers 1)")
		traceF   = flag.String("trace-filter", "", "comma-separated category prefixes to trace (empty = all)")
		archO    = flag.String("archive-out", "", "write a run archive to this file (experiments run sequentially in id order; byte-identical at any -workers/-shards)")
		resumeO  = flag.String("resume", "", "campaign state file: skip experiments it records as complete, persist each new one as it finishes (requires -archive-out)")
		joinSpd  = flag.Duration("join-spread", 0, "stagger client admission in the city/metro experiments over this window (0 = legacy t=0 join storm)")
		joinRamp = flag.String("join-ramp", "uniform", "admission offset shape with -join-spread: uniform or exp")
	)
	flag.Parse()
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spider-exp:", err)
		os.Exit(2)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "spider-exp:", err)
		}
	}()

	if *list {
		for _, e := range expt.IDs() {
			fmt.Println(e)
		}
		return
	}
	if *id == "" {
		fmt.Fprintln(os.Stderr, "spider-exp: -id required (or -list); e.g. -id table2")
		os.Exit(2)
	}
	if *traceO != "" {
		// A trace of concurrently interleaved worlds is unreadable and
		// nondeterministic; tracing serializes the run.
		*workers = 1
	}
	var o *obs.Obs
	if *metricsO != "" || *traceO != "" {
		o = obs.New(0)
		if *traceF != "" {
			o.Tracer.SetFilter(strings.Split(*traceF, ",")...)
		}
	}
	if *joinSpd < 0 || (*joinRamp != "uniform" && *joinRamp != "exp") {
		fmt.Fprintln(os.Stderr, "spider-exp: -join-spread must be >= 0 and -join-ramp uniform or exp")
		os.Exit(2)
	}
	opts := expt.Options{Seed: *seed, Scale: *scale, Workers: *workers, Chaos: *chaos, Obs: o, Shards: *shards,
		JoinSpread: *joinSpd, JoinRamp: *joinRamp}
	// Unknown or duplicate ids fail here, before any experiment runs — a
	// typo must not cost a partial campaign.
	ids, err := expt.ResolveIDs(*id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spider-exp:", err)
		os.Exit(2)
	}
	// Experiments are independent worlds on independent kernels, so a
	// multi-experiment run fans out on the sweep engine; the -workers
	// budget covers the whole process (each experiment runs its sub-runs
	// sequentially here, since the fan-out across experiments already
	// fills the pool). Results print in id order regardless of
	// completion order.
	type outcome struct {
		res     fmt.Stringer
		elapsed time.Duration
	}
	perExpt := opts
	exptWorkers := *workers
	if len(ids) > 1 {
		perExpt.Workers = 1
	}
	var arch *archive.Archive
	if *archO != "" {
		// The archive is one document in id order, so the fan-out across
		// experiments goes sequential and each experiment gets the full
		// worker budget back — results are worker-invariant either way.
		arch = expt.NewArchive(opts)
		exptWorkers = 1
		perExpt.Workers = *workers
	}
	var camp *campaignState
	if *resumeO != "" {
		if arch == nil {
			fmt.Fprintln(os.Stderr, "spider-exp: -resume requires -archive-out (the archive is what a campaign resumes)")
			os.Exit(2)
		}
		campFP := archive.FP(fmt.Sprintf("seed=%d", *seed), expt.ConfigFP(opts),
			"ids="+strings.Join(ids, ","))
		camp, err = loadCampaign(*resumeO, campFP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spider-exp:", err)
			os.Exit(1)
		}
		if camp.Archive != nil {
			// Continue the interrupted run's document: already-archived
			// experiments keep their bytes, new ones append in id order.
			arch = camp.Archive
			fmt.Printf("   resuming campaign from %s: %d of %d experiments already archived\n",
				*resumeO, len(camp.Completed), len(ids))
		}
	}
	outs, err := sweep.Map(context.Background(), exptWorkers, ids,
		func(_ context.Context, _ int, e string) (outcome, error) {
			start := time.Now()
			var res fmt.Stringer
			var err error
			switch {
			case camp != nil && camp.Done(e):
				res = skippedResult(e)
			case arch != nil:
				res, err = expt.RunArchived(arch, e, perExpt)
				if err == nil && camp != nil {
					camp.MarkDone(e)
					camp.Archive = arch
					err = camp.save(*resumeO)
				}
			default:
				res, err = expt.Run(e, perExpt)
			}
			return outcome{res: res, elapsed: time.Since(start)}, err
		})
	if err != nil {
		fmt.Fprintf(os.Stderr, "spider-exp: %v\n", err)
		os.Exit(1)
	}
	for i, e := range ids {
		o := outs[i]
		if *plotOut {
			printPlots(o.res)
		} else {
			fmt.Println(o.res)
		}
		if *svgDir != "" {
			if err := writeSVGs(*svgDir, o.res); err != nil {
				fmt.Fprintf(os.Stderr, "spider-exp: %v\n", err)
				os.Exit(1)
			}
		}
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, o.res); err != nil {
				fmt.Fprintf(os.Stderr, "spider-exp: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Printf("   [%s regenerated in %v at scale %.2f, seed %d]\n\n",
			e, o.elapsed.Round(time.Millisecond), *scale, *seed)
	}
	if arch != nil {
		if err := os.WriteFile(*archO, arch.Encode(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "spider-exp:", err)
			os.Exit(1)
		}
		fmt.Printf("   wrote %s (run %s, %d experiments)\n", *archO, arch.RunID, len(arch.Experiments))
	}
	if *metricsO != "" {
		if err := obs.WriteMetricsFile(*metricsO, o.Reg.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "spider-exp:", err)
			os.Exit(1)
		}
		fmt.Printf("   wrote %s\n", *metricsO)
	}
	if *traceO != "" {
		if err := obs.WriteTraceFile(*traceO, o.Tracer); err != nil {
			fmt.Fprintln(os.Stderr, "spider-exp:", err)
			os.Exit(1)
		}
		if d := o.Tracer.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "spider-exp: trace ring wrapped; oldest %d events dropped (narrow with -trace-filter)\n", d)
		}
		fmt.Printf("   wrote %s\n", *traceO)
	}
}

// writeCSVs saves any figures in the result into dir as <id>.csv with
// one (series, x, y) row per point.
func writeCSVs(dir string, res fmt.Stringer) error {
	var figs []expt.Figure
	switch r := res.(type) {
	case expt.Figure:
		figs = []expt.Figure{r}
	case expt.Fig4Result:
		for i, f := range r.Scenarios {
			f.ID = fmt.Sprintf("%s-%d", f.ID, i+1)
			figs = append(figs, f)
		}
	case expt.Fig10Result:
		figs = []expt.Figure{r.Connections, r.Disruptions, r.Bandwidth}
	default:
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range figs {
		var b strings.Builder
		b.WriteString("series,x,y\n")
		for _, sr := range f.Series {
			for _, p := range sr.Points {
				fmt.Fprintf(&b, "%q,%g,%g\n", sr.Name, p.X, p.Y)
			}
		}
		path := filepath.Join(dir, f.ID+".csv")
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("   wrote %s\n", path)
	}
	return nil
}

// printPlots renders any figures contained in a result as terminal
// charts; tables and other results fall back to their text form.
func printPlots(res fmt.Stringer) {
	switch r := res.(type) {
	case expt.Figure:
		fmt.Println(r.Plot(72, 18))
	case expt.Fig4Result:
		for _, f := range r.Scenarios {
			fmt.Println(f.Plot(72, 18))
		}
	case expt.Fig10Result:
		for _, f := range []expt.Figure{r.Connections, r.Disruptions, r.Bandwidth} {
			fmt.Println(f.Plot(72, 18))
		}
	default:
		fmt.Println(res)
	}
}

// writeSVGs saves any figures in the result into dir as <id>.svg.
func writeSVGs(dir string, res fmt.Stringer) error {
	var figs []expt.Figure
	switch r := res.(type) {
	case expt.Figure:
		figs = []expt.Figure{r}
	case expt.Fig4Result:
		for i, f := range r.Scenarios {
			f.ID = fmt.Sprintf("%s-%d", f.ID, i+1)
			figs = append(figs, f)
		}
	case expt.Fig10Result:
		figs = []expt.Figure{r.Connections, r.Disruptions, r.Bandwidth}
	default:
		return nil // tables have no SVG form
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range figs {
		path := filepath.Join(dir, f.ID+".svg")
		if err := os.WriteFile(path, []byte(f.PlotSVG(640, 360)), 0o644); err != nil {
			return err
		}
		fmt.Printf("   wrote %s\n", path)
	}
	return nil
}
