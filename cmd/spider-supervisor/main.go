// Command spider-supervisor is the simulation-as-a-service daemon: it
// accepts campaign specs over HTTP, fans runs across the deterministic
// sweep engine, persists campaign state durably after every run, and
// serves the resulting spider-archive documents plus a live Prometheus
// scrape. See docs/SUPERVISOR.md for the API reference and a curl
// walkthrough.
//
// Usage:
//
//	spider-supervisor [-addr :8677] [-store supervisor-state]
//	                  [-max-runs N] [-drain 30s]
//
// A killed (or drained) supervisor resumes every incomplete campaign
// when restarted over the same -store directory, and the archives it
// then serves are byte-identical to an uninterrupted run — the same
// contract spider-exp's -resume flag honors.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"spider/internal/supervisor"
)

func main() {
	var (
		addr    = flag.String("addr", ":8677", "listen address")
		store   = flag.String("store", "supervisor-state", "campaign state directory (created if missing; incomplete campaigns resume on start)")
		maxRuns = flag.Int("max-runs", runtime.GOMAXPROCS(0), "experiment runs executing concurrently across all campaigns")
		drain   = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight runs")
	)
	flag.Parse()

	sup, err := supervisor.New(*store, *maxRuns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spider-supervisor:", err)
		os.Exit(1)
	}
	srv := &http.Server{Addr: *addr, Handler: sup.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("spider-supervisor: listening on %s, store %s, %d concurrent runs\n", *addr, *store, *maxRuns)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("spider-supervisor: %v, draining (deadline %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		srv.Shutdown(ctx)
		if err := sup.Shutdown(ctx); err != nil {
			// Campaign state is durable run by run: whatever the deadline
			// cut off resumes on the next start.
			fmt.Fprintln(os.Stderr, "spider-supervisor:", err)
			os.Exit(1)
		}
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "spider-supervisor:", err)
		os.Exit(1)
	}
}
