// Command spider-model queries the paper's analytical framework (§2.1):
// the join-probability model of Eqs. 5–7 and the dividing-speed
// optimization of Eqs. 8–10.
//
// Usage:
//
//	spider-model joinprob -f 0.25 -t 4s -betamax 5s
//	spider-model dividing -joined 0.5 -avail 0.5
//	spider-model optimize -joined 0.75 -avail 0.25 -speed 5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spider/internal/model"
)

func usage() {
	fmt.Fprintln(os.Stderr, `spider-model <joinprob|dividing|optimize> [flags]
  joinprob  -f <fraction> -t <dur> -betamax <dur>   join probability (Eq. 7)
  dividing  -joined <share> -avail <share>          dividing speed (m/s)
  optimize  -joined <share> -avail <share> -speed <m/s>  optimal schedule`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "joinprob":
		fs := flag.NewFlagSet("joinprob", flag.ExitOnError)
		f := fs.Float64("f", 0.25, "fraction of time on the channel")
		t := fs.Duration("t", 4*time.Second, "time in range")
		betaMax := fs.Duration("betamax", 5*time.Second, "maximum AP response time")
		fs.Parse(os.Args[2:])
		p := model.PaperJoinParams(*betaMax)
		fmt.Printf("p(f=%.2f, t=%v, βmax=%v) = %.4f\n", *f, *t, *betaMax, p.JoinProb(*f, *t))
		fmt.Printf("expected join time within %v: %v\n", *t,
			p.ExpectedJoinTime(*f, *t).Round(time.Millisecond))
	case "dividing":
		fs := flag.NewFlagSet("dividing", flag.ExitOnError)
		joined := fs.Float64("joined", 0.5, "share of Bw already joined on channel 1")
		avail := fs.Float64("avail", 0.5, "share of Bw available (join required) on channel 2")
		fs.Parse(os.Args[2:])
		chans := []model.ChannelOffer{
			{JoinedKbps: *joined * model.BwKbps},
			{AvailKbps: *avail * model.BwKbps},
		}
		ds := model.DividingSpeed(model.PaperJoinParams(10*time.Second), chans,
			model.WiFiRangeM, 1, 40, 0.25)
		fmt.Printf("dividing speed for (%.0f%%, %.0f%%): %.2f m/s (%.1f mph)\n",
			*joined*100, *avail*100, ds, ds*2.237)
		fmt.Println("faster than this: stay on a single channel.")
	case "optimize":
		fs := flag.NewFlagSet("optimize", flag.ExitOnError)
		joined := fs.Float64("joined", 0.5, "share of Bw already joined on channel 1")
		avail := fs.Float64("avail", 0.5, "share of Bw available on channel 2")
		speed := fs.Float64("speed", 10, "vehicle speed (m/s)")
		fs.Parse(os.Args[2:])
		T := time.Duration(model.WiFiRangeM / *speed * float64(time.Second))
		s := model.Optimize(model.OptimizeInput{
			Join: model.PaperJoinParams(10 * time.Second),
			Channels: []model.ChannelOffer{
				{JoinedKbps: *joined * model.BwKbps},
				{AvailKbps: *avail * model.BwKbps},
			},
			T: T,
		})
		fmt.Printf("speed %.1f m/s → residence T=%v\n", *speed, T.Round(time.Millisecond))
		fmt.Printf("optimal schedule: f1=%.2f f2=%.2f\n", s.F[0], s.F[1])
		fmt.Printf("per-channel bandwidth: %.0f / %.0f kbps (aggregate %.0f)\n",
			s.PerChannelKbps[0], s.PerChannelKbps[1], s.AggregateKbps)
	default:
		usage()
	}
}
