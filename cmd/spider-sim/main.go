// Command spider-sim runs one vehicular drive with a chosen driver
// configuration and reports the paper's §4.3 metrics.
//
// Usage:
//
//	spider-sim -config ch1-multi -minutes 30
//	spider-sim -config 3ch-multi -city boston -speed 8 -seed 7
//
// Configurations: ch1-multi, ch1-single, 3ch-multi, 3ch-single, stock.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spider/internal/core"
	"spider/internal/metrics"
	"spider/internal/pcap"
	"spider/internal/radio"
	"spider/internal/scenario"
)

func driverConfig(name string) (core.Config, error) {
	one := []core.ChannelSlice{{Channel: 1}}
	three := core.EqualSchedule(200*time.Millisecond, 1, 6, 11)
	switch name {
	case "ch1-multi":
		return core.SpiderDefaults(core.SingleChannelMultiAP, one), nil
	case "ch1-single":
		return core.StockDefaults(one), nil
	case "3ch-multi":
		return core.SpiderDefaults(core.MultiChannelMultiAP, three), nil
	case "3ch-single":
		return core.SpiderDefaults(core.MultiChannelSingleAP, three), nil
	case "stock":
		return core.StockDefaults(three), nil
	}
	return core.Config{}, fmt.Errorf("unknown config %q", name)
}

func main() {
	var (
		config  = flag.String("config", "ch1-multi", "driver configuration")
		city    = flag.String("city", "amherst", "drive scenario: amherst or boston")
		minutes = flag.Int("minutes", 30, "drive duration in simulated minutes")
		seed    = flag.Int64("seed", 1, "simulation seed")
		speed   = flag.Float64("speed", 0, "override vehicle speed (m/s)")
		numAPs  = flag.Int("aps", 0, "override deployed AP count")
		pcapOut = flag.String("pcap", "", "write an over-the-air capture to this file")
	)
	flag.Parse()

	cfg, err := driverConfig(*config)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spider-sim:", err)
		os.Exit(2)
	}
	spec := scenario.AmherstDrive(*seed)
	if *city == "boston" {
		spec = scenario.BostonDrive(*seed)
	}
	rc := radio.Defaults()
	rc.DataRateKbps = 24_000
	rc.Loss = 0.08
	rc.EdgeStart = 0.55
	spec.Radio = rc
	if *speed > 0 {
		spec.SpeedMS = *speed
	}
	if *numAPs > 0 {
		spec.NumAPs = *numAPs
	}
	world, mob := spec.Build()
	client := world.AddClient(cfg, mob)
	var capture *pcap.Capture
	if *pcapOut != "" {
		capture = pcap.NewCapture(world.Medium, 0)
	}

	dur := time.Duration(*minutes) * time.Minute
	start := time.Now()
	world.Run(dur)

	if capture != nil {
		f, err := os.Create(*pcapOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spider-sim:", err)
			os.Exit(1)
		}
		n, err := capture.Dump(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "spider-sim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d frames to %s (dropped %d over the capture limit)\n",
			n, *pcapOut, capture.Dropped)
	}

	fmt.Printf("Drive: %s, %d APs, %.1f m/s, %v simulated (%v wall)\n",
		*city, len(world.APs), spec.SpeedMS, dur, time.Since(start).Round(time.Millisecond))
	fmt.Printf("Driver: %s\n\n", cfg.Mode)
	fmt.Printf("  avg throughput:   %s\n", metrics.FormatKBps(client.Rec.ThroughputKBps(dur)))
	fmt.Printf("  connectivity:     %s\n", metrics.FormatPct(client.Rec.Connectivity(dur)))
	conns := client.Rec.Connections(dur)
	gaps := client.Rec.Disruptions(dur)
	if len(conns) > 0 {
		cdf := metrics.DurationsCDF(conns)
		fmt.Printf("  connections:      %d (median %.0fs)\n", len(conns), cdf.Median())
	}
	if len(gaps) > 0 {
		cdf := metrics.DurationsCDF(gaps)
		fmt.Printf("  disruptions:      %d (median %.0fs)\n", len(gaps), cdf.Median())
	}
	inst := metrics.NewCDF(client.Rec.InstantaneousKBps(dur))
	if inst.N() > 0 {
		fmt.Printf("  inst. bandwidth:  p50 %.0f / p90 %.0f KBps\n",
			inst.Quantile(0.5), inst.Quantile(0.9))
	}
	st := client.Driver.Stats()
	fmt.Printf("\n  joins: %d ok / %d dhcp-failed (%d fast-path, %d soft handoffs), assoc %d/%d, switches %d\n",
		st.JoinSuccesses, st.DHCPFailures, st.FastPathJoins, st.SoftHandoffs,
		st.AssocSuccesses, st.AssocAttempts, st.Switches)
}
