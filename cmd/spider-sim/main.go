// Command spider-sim runs one vehicular drive with a chosen driver
// configuration and reports the paper's §4.3 metrics.
//
// Usage:
//
//	spider-sim -config ch1-multi -minutes 30
//	spider-sim -config 3ch-multi -city boston -speed 8 -seed 7
//	spider-sim -config 3ch-multi -reps 8 -workers 4
//	spider-sim -city citygrid -clients 100 -aps 600 -minutes 2 -shards 4
//
// Configurations: ch1-multi, ch1-single, 3ch-multi, 3ch-single, stock.
//
// -city citygrid runs the sharded city-scale scenario instead of a
// single drive: a whole vehicle fleet over a square-kilometer AP
// deployment, partitioned into spatial tiles advancing in lockstep.
// -shards sets how many tiles advance concurrently; results are
// byte-identical at any value.
//
// With -reps N > 1, N independent replications of the drive run on the
// sweep engine (bounded by -workers goroutines) and the report adds
// mean ± stddev across replications. Replication seeds derive from
// (seed, config, rep), so the same flags always reproduce the same
// numbers at any worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"spider/internal/archive"
	"spider/internal/checkpoint"
	"spider/internal/core"
	"spider/internal/fault"
	"spider/internal/metrics"
	"spider/internal/obs"
	"spider/internal/pcap"
	"spider/internal/prof"
	"spider/internal/radio"
	"spider/internal/scenario"
	"spider/internal/shard"
	"spider/internal/sweep"
)

func driverConfig(name string) (core.Config, error) {
	one := []core.ChannelSlice{{Channel: 1}}
	three := core.EqualSchedule(200*time.Millisecond, 1, 6, 11)
	switch name {
	case "ch1-multi":
		return core.SpiderDefaults(core.SingleChannelMultiAP, one), nil
	case "ch1-single":
		return core.StockDefaults(one), nil
	case "3ch-multi":
		return core.SpiderDefaults(core.MultiChannelMultiAP, three), nil
	case "3ch-single":
		return core.SpiderDefaults(core.MultiChannelSingleAP, three), nil
	case "stock":
		return core.StockDefaults(three), nil
	}
	return core.Config{}, fmt.Errorf("unknown config %q", name)
}

// driveResult holds one replication's §4.3 metrics.
type driveResult struct {
	seed           int64
	numAPs         int
	speedMS        float64
	mode           core.Mode
	throughputKBps float64
	connectivity   float64
	conns, gaps    []time.Duration
	instKBps       []float64
	stats          core.Stats
	faultReport    string // per-class ledger when -chaos is active
	checkerErr     error  // invariant/deadlock/timer-leak verdict

	// client is the drive's single client, kept for the archive writer
	// (its recorder and join log are the per-client ledger); faultStats
	// is the raw per-class ledger behind faultReport.
	client     *scenario.Client
	faultStats []fault.ClassStat

	// Observability exports (nil/empty when -metrics-out/-trace-out are
	// unset). Each replication snapshots its own registry; the reps path
	// merges the snapshots in index order, so the merged export is
	// identical at any -workers value.
	snap   obs.Snapshot
	tracer *obs.Tracer
}

// obsSpec carries the observability flags into runDrive.
type obsSpec struct {
	metrics bool
	trace   bool
	filter  []string
}

func (s obsSpec) enabled() bool { return s.metrics || s.trace }

// runDrive builds a fresh world from the flags and one seed, runs the
// drive, and gathers the metrics. Each call is independent, so
// replications can run concurrently.
func runDrive(cfg core.Config, city string, seed int64, speed float64, numAPs int, dur time.Duration, pcapOut, chaosSpec string, ospec obsSpec) (driveResult, error) {
	spec := scenario.AmherstDrive(seed)
	if city == "boston" {
		spec = scenario.BostonDrive(seed)
	}
	rc := radio.Defaults()
	rc.DataRateKbps = 24_000
	rc.Loss = 0.08
	rc.EdgeStart = 0.55
	spec.Radio = rc
	if speed > 0 {
		spec.SpeedMS = speed
	}
	if numAPs > 0 {
		spec.NumAPs = numAPs
	}
	world, mob := spec.Build()
	// Attach before AddClient and ApplyChaos so the driver histograms and
	// the injector's episode spans are wired from the start.
	var o *obs.Obs
	if ospec.enabled() {
		o = obs.New(0)
		o.Tracer.SetFilter(ospec.filter...)
		world.AttachObs(o)
	}
	client := world.AddClient(cfg, mob)
	var chaos *scenario.Chaos
	if chaosSpec != "" {
		fcfg, tl, _, err := fault.Resolve(chaosSpec)
		if err != nil {
			return driveResult{}, err
		}
		chaos = scenario.ApplyChaos(world, client, fcfg)
		if len(tl) > 0 {
			chaos.Injector.ScheduleTimeline(tl)
			chaos.Checker.StartLiveness(5 * time.Second)
		}
	}
	var capture *pcap.Capture
	if pcapOut != "" {
		capture = pcap.NewCapture(world.Medium, 0)
	}
	world.Run(dur)

	if capture != nil {
		f, err := os.Create(pcapOut)
		if err != nil {
			return driveResult{}, err
		}
		n, err := capture.Dump(f)
		f.Close()
		if err != nil {
			return driveResult{}, err
		}
		fmt.Printf("wrote %d frames to %s (dropped %d over the capture limit)\n",
			n, pcapOut, capture.Dropped)
	}

	res := driveResult{
		seed:           seed,
		numAPs:         len(world.APs),
		speedMS:        spec.SpeedMS,
		mode:           cfg.Mode,
		throughputKBps: client.Rec.ThroughputKBps(dur),
		connectivity:   client.Rec.Connectivity(dur),
		conns:          client.Rec.Connections(dur),
		gaps:           client.Rec.Disruptions(dur),
		instKBps:       client.Rec.InstantaneousKBps(dur),
		stats:          client.Driver.Stats(),
		client:         client,
	}
	if chaos != nil {
		res.faultReport = chaos.Injector.Report()
		res.faultStats = chaos.Injector.Snapshot()
		res.checkerErr = chaos.Checker.Verify()
	}
	if o != nil {
		res.snap = o.Reg.Snapshot()
		res.tracer = o.Tracer
	}
	return res, nil
}

func report(r driveResult) {
	fmt.Printf("  avg throughput:   %s\n", metrics.FormatKBps(r.throughputKBps))
	fmt.Printf("  connectivity:     %s\n", metrics.FormatPct(r.connectivity))
	if len(r.conns) > 0 {
		cdf := metrics.DurationsCDF(r.conns)
		fmt.Printf("  connections:      %d (median %.0fs)\n", len(r.conns), cdf.Median())
	}
	if len(r.gaps) > 0 {
		cdf := metrics.DurationsCDF(r.gaps)
		fmt.Printf("  disruptions:      %d (median %.0fs)\n", len(r.gaps), cdf.Median())
	}
	inst := metrics.NewCDF(r.instKBps)
	if inst.N() > 0 {
		fmt.Printf("  inst. bandwidth:  p50 %.0f / p90 %.0f KBps\n",
			inst.Quantile(0.5), inst.Quantile(0.9))
	}
	st := r.stats
	fmt.Printf("\n  joins: %d ok / %d dhcp-failed (%d fast-path, %d soft handoffs), assoc %d/%d, switches %d\n",
		st.JoinSuccesses, st.DHCPFailures, st.FastPathJoins, st.SoftHandoffs,
		st.AssocSuccesses, st.AssocAttempts, st.Switches)
	if r.faultReport != "" {
		fmt.Printf("  recovery: %d blacklisted (%d evictions), %d lease revalidations, %d reset faults\n",
			st.Blacklisted, st.BlacklistEvictions, st.LeaseRevalidations, st.ResetFaults)
		fmt.Printf("\n%s", r.faultReport)
		if r.checkerErr != nil {
			fmt.Printf("\n  CHECKER FAILED: %v\n", r.checkerErr)
		} else {
			fmt.Printf("  checker: clean\n")
		}
	}
}

// writeObs writes the single-rep observability exports.
func writeObs(metricsOut, traceOut string, snap obs.Snapshot, tr *obs.Tracer) error {
	if metricsOut != "" {
		if err := obs.WriteMetricsFile(metricsOut, snap); err != nil {
			return err
		}
	}
	if traceOut != "" {
		if err := obs.WriteTraceFile(traceOut, tr); err != nil {
			return err
		}
		if d := tr.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "spider-sim: trace ring wrapped; oldest %d events dropped (narrow with -trace-filter)\n", d)
		}
	}
	return nil
}

// writeDriveArchive archives one or more drive replications as one
// document: rep i becomes experiment "drive[i]" holding the client's
// ledger, the fault ledger, the metrics snapshot, trace-span summary
// and headline results. Replications come back index-ordered from the
// sweep, so the document is byte-identical at any -workers value.
func writeDriveArchive(path string, seed int64, configFP, chaosSpec string, results []driveResult) error {
	a := archive.New(seed, configFP)
	for i, r := range results {
		expID := archive.SubID(a.RunID, fmt.Sprintf("experiment/drive[%d]", i), 0)
		exp := archive.Experiment{ID: expID, Name: fmt.Sprintf("drive[%d]", i), Chaos: chaosSpec}
		exp.Clients = append(exp.Clients, archive.ClientLedgerFrom(expID, 0, r.client))
		exp.Faults = archive.FaultsFrom(expID, r.faultStats)
		exp.Metrics = archive.MetricsFrom(expID, r.snap)
		if r.tracer != nil {
			exp.Spans = archive.SpansFrom(expID, r.tracer.Events())
		}
		addNum := func(key string, v float64) {
			exp.Results = append(exp.Results, archive.Result{
				ID:   archive.SubID(expID, "result", len(exp.Results)),
				Name: "drive", Key: key, Num: &v,
			})
		}
		addNum("throughput_KBps", r.throughputKBps)
		addNum("connectivity", r.connectivity)
		addNum("connections", float64(len(r.conns)))
		addNum("disruptions", float64(len(r.gaps)))
		a.Experiments = append(a.Experiments, exp)
	}
	if err := os.WriteFile(path, a.Encode(), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (run %s, %d experiments)\n", path, a.RunID, len(a.Experiments))
	return nil
}

// ckptOpts carries the crash-resume flags into the citygrid runner.
type ckptOpts struct {
	out    string // -checkpoint-out: checkpoint file path
	every  int    // -checkpoint-every: rewrite it every N barrier epochs (0 = only at end)
	resume string // -resume: checkpoint file to restore before running
}

// runCityGrid builds and runs the sharded city-scale scenario and
// reports fleet-wide aggregates.
func runCityGrid(cfg core.Config, seed int64, numAPs, clients, shards int, areaW, areaH float64, joinSpread time.Duration, joinRamp string, dur time.Duration, chaosSpec string, ospec obsSpec, metricsOut, traceOut, archiveOut, configFP string, ck ckptOpts) error {
	if numAPs <= 0 {
		numAPs = 600
	}
	spec := scenario.CityGrid(seed, numAPs, clients)
	if areaW > 0 {
		spec.AreaW = areaW
	}
	if areaH > 0 {
		spec.AreaH = areaH
	}
	spec.JoinSpread, spec.JoinRamp = joinSpread, joinRamp
	rc := radio.Defaults()
	rc.DataRateKbps = 24_000
	spec.Radio = rc

	start := time.Now()
	c := shard.NewCity(spec, cfg, shards)
	if ospec.enabled() || archiveOut != "" {
		c.EnableObs(0, ospec.filter...)
	}
	if chaosSpec != "" {
		fcfg, ok := fault.Profile(chaosSpec)
		if !ok {
			return fmt.Errorf("citygrid: unknown chaos profile %q (timeline scripts are single-drive only)", chaosSpec)
		}
		c.ApplyChaos(fcfg)
	}
	if ck.resume != "" {
		doc, err := checkpoint.ReadFile(ck.resume)
		if err != nil {
			return err
		}
		if err := doc.Apply(c, seed, configFP); err != nil {
			return err
		}
		fmt.Printf("resumed from %s at t=%v\n", ck.resume, c.Now())
	}
	writeCkpt := func() error {
		doc, err := checkpoint.Capture(c, seed, configFP)
		if err != nil {
			return err
		}
		return checkpoint.WriteFile(ck.out, doc)
	}
	if ck.out != "" && ck.every > 0 {
		// Periodic checkpoints land on the barrier-epoch grid, so a
		// resumed run reproduces the uninterrupted run's barrier
		// schedule (and therefore its bytes) exactly.
		step := time.Duration(ck.every) * c.Layout.Epoch
		for c.Now() < dur {
			next := c.Now() + step
			if next > dur {
				next = dur
			}
			if err := c.Run(next); err != nil {
				return err
			}
			if err := writeCkpt(); err != nil {
				return err
			}
		}
	} else if err := c.Run(dur); err != nil {
		return err
	}
	if ck.out != "" && ck.every <= 0 {
		if err := writeCkpt(); err != nil {
			return err
		}
	}

	fmt.Printf("City: %.0f×%.0f m, %d APs, %d clients, %v simulated (%v wall)\n",
		spec.AreaW, spec.AreaH, numAPs, clients, dur, time.Since(start).Round(time.Millisecond))
	fmt.Printf("Layout: %s, %d shard workers\n", c.Layout, sweep.Workers(shards))
	fmt.Printf("Driver: %s\n\n", cfg.Mode)

	var tputs []float64
	var joins, switches, haloRecs uint64
	for _, cl := range c.Clients() {
		tputs = append(tputs, cl.Rec.ThroughputKBps(dur))
		s := cl.Stats()
		joins += s.JoinSuccesses
		switches += s.Switches
	}
	for _, t := range c.Tiles {
		haloRecs += t.World.Medium.Stats().HaloInjected
		fmt.Printf("  tile %d [%5.0f, %5.0f)×[%5.0f, %5.0f): %3d APs, %3d clients\n",
			t.Index, t.X0, t.X1, t.Y0, t.Y1, len(t.World.APs), len(t.World.Clients))
	}
	cdf := metrics.NewCDF(tputs)
	fmt.Printf("\n  fleet goodput:    mean %s, p50 %s, p90 %s\n",
		metrics.FormatKBps(metrics.Mean(tputs)),
		metrics.FormatKBps(cdf.Quantile(0.5)), metrics.FormatKBps(cdf.Quantile(0.9)))
	fmt.Printf("  joins: %d ok, switches %d\n", joins, switches)
	fmt.Printf("  shard machinery:  %d migrations, %d halo beacons mirrored\n", c.Migrations, haloRecs)
	if len(c.Injectors) > 0 {
		fmt.Printf("  faults injected:  %d\n", c.TotalInjected())
	}
	if inv := c.InvariantsTotal(); inv > 0 {
		fmt.Printf("  INVARIANT VIOLATIONS: %d\n", inv)
	}
	// Engine summary: how fast the run went and what it cost. Fired
	// counts are deterministic (kernel events are the simulation), the
	// rate and heap figure are this machine's.
	var fired uint64
	for _, t := range c.Tiles {
		fired += t.World.Kernel.Fired()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	wall := time.Since(start)
	fmt.Printf("  engine: %.1f sim-s per wall-s, %d kernel events dispatched, peak heap %d MiB\n",
		dur.Seconds()/wall.Seconds(), fired, ms.HeapSys>>20)

	if metricsOut != "" {
		if err := obs.WriteMetricsFile(metricsOut, c.MergedSnapshot()); err != nil {
			return err
		}
	}
	if traceOut != "" {
		if err := obs.WriteTraceEventsFile(traceOut, c.TraceEvents()); err != nil {
			return err
		}
	}
	if archiveOut != "" {
		a := archive.New(seed, configFP)
		expID := archive.SubID(a.RunID, "experiment/citygrid", 0)
		a.Experiments = append(a.Experiments, archive.CityExperiment(expID, "citygrid", chaosSpec, c, dur))
		if err := os.WriteFile(archiveOut, a.Encode(), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (run %s)\n", archiveOut, a.RunID)
	}
	return nil
}

func main() {
	var (
		config   = flag.String("config", "ch1-multi", "driver configuration")
		city     = flag.String("city", "amherst", "scenario: amherst, boston, or citygrid (sharded fleet)")
		clients  = flag.Int("clients", 100, "vehicle fleet size (citygrid only)")
		shards   = flag.Int("shards", 1, "concurrent tile workers (citygrid only; results identical at any value)")
		minutes  = flag.Int("minutes", 30, "drive duration in simulated minutes")
		seed     = flag.Int64("seed", 1, "simulation seed")
		speed    = flag.Float64("speed", 0, "override vehicle speed (m/s)")
		numAPs   = flag.Int("aps", 0, "override deployed AP count")
		areaW    = flag.Float64("area-w", 0, "override city width in meters (citygrid only)")
		areaH    = flag.Float64("area-h", 0, "override city height in meters (citygrid only)")
		reps     = flag.Int("reps", 1, "independent drive replications")
		workers  = flag.Int("workers", runtime.NumCPU(), "worker goroutines when -reps > 1")
		pcapOut  = flag.String("pcap", "", "write an over-the-air capture to this file (single rep only)")
		chaos    = flag.String("chaos", "", "fault injection: off, mild, aggressive, or a timeline script")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		metricsO = flag.String("metrics-out", "", "write Prometheus-format metrics to this file (reps merge in index order)")
		traceO   = flag.String("trace-out", "", "write the event trace to this file: .jsonl for JSONL, else Chrome trace JSON (single rep only)")
		traceF   = flag.String("trace-filter", "", "comma-separated category prefixes to trace (empty = all)")
		archO    = flag.String("archive-out", "", "write a run archive to this file (byte-identical at any -workers/-shards)")
		ckptO    = flag.String("checkpoint-out", "", "write a resumable checkpoint to this file (citygrid only)")
		ckptN    = flag.Int("checkpoint-every", 0, "rewrite -checkpoint-out every N barrier epochs (0 = only at run end)")
		resume   = flag.String("resume", "", "resume a citygrid run from this checkpoint file (same seed and flags)")
		joinSpd  = flag.Duration("join-spread", 0, "stagger client admission over this window (citygrid only; 0 = legacy t=0 join storm)")
		joinRamp = flag.String("join-ramp", "uniform", "admission offset shape with -join-spread: uniform or exp")
	)
	flag.Parse()
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spider-sim:", err)
		os.Exit(2)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "spider-sim:", err)
		}
	}()

	cfg, err := driverConfig(*config)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spider-sim:", err)
		os.Exit(2)
	}
	// The config fingerprint covers every flag that changes results and
	// none that may not: -workers and -shards are deliberately outside
	// it, since archives must compare byte-identical across them.
	fpParts := []string{
		"config=" + *config,
		"city=" + *city,
		fmt.Sprintf("clients=%d", *clients),
		fmt.Sprintf("minutes=%d", *minutes),
		fmt.Sprintf("speed=%g", *speed),
		fmt.Sprintf("aps=%d", *numAPs),
		fmt.Sprintf("area=%gx%g", *areaW, *areaH),
		fmt.Sprintf("reps=%d", *reps),
		"chaos=" + *chaos,
	}
	// Staggered admission changes simulated bytes, so it splits the
	// fingerprint — conditionally, so legacy invocations (and their
	// checkpoints) keep their historical identity.
	if *joinSpd > 0 {
		fpParts = append(fpParts,
			fmt.Sprintf("join-spread=%s", *joinSpd), "join-ramp="+*joinRamp)
	}
	configFP := archive.FP(fpParts...)
	if *joinSpd < 0 || (*joinRamp != "uniform" && *joinRamp != "exp") {
		fmt.Fprintln(os.Stderr, "spider-sim: -join-spread must be >= 0 and -join-ramp uniform or exp")
		os.Exit(2)
	}
	if *joinSpd > 0 && *city != "citygrid" {
		fmt.Fprintln(os.Stderr, "spider-sim: -join-spread requires -city citygrid")
		os.Exit(2)
	}
	if *city != "citygrid" && (*ckptO != "" || *ckptN > 0 || *resume != "") {
		fmt.Fprintln(os.Stderr, "spider-sim: -checkpoint-out/-checkpoint-every/-resume require -city citygrid")
		os.Exit(2)
	}
	if *city == "citygrid" {
		if *reps > 1 {
			fmt.Fprintln(os.Stderr, "spider-sim: -city citygrid requires -reps 1 (use -shards for parallelism)")
			os.Exit(2)
		}
		ospec := obsSpec{metrics: *metricsO != "", trace: *traceO != ""}
		if *traceF != "" {
			ospec.filter = strings.Split(*traceF, ",")
		}
		err := runCityGrid(cfg, *seed, *numAPs, *clients, *shards, *areaW, *areaH, *joinSpd, *joinRamp,
			time.Duration(*minutes)*time.Minute, *chaos, ospec, *metricsO, *traceO, *archO, configFP,
			ckptOpts{out: *ckptO, every: *ckptN, resume: *resume})
		if err != nil {
			fmt.Fprintln(os.Stderr, "spider-sim:", err)
			os.Exit(1)
		}
		return
	}
	if *reps < 1 {
		fmt.Fprintln(os.Stderr, "spider-sim: -reps must be at least 1")
		os.Exit(2)
	}
	if *pcapOut != "" && *reps > 1 {
		fmt.Fprintln(os.Stderr, "spider-sim: -pcap requires -reps 1")
		os.Exit(2)
	}
	if *traceO != "" && *reps > 1 {
		fmt.Fprintln(os.Stderr, "spider-sim: -trace-out requires -reps 1")
		os.Exit(2)
	}
	// Archiving wants the metrics snapshot even without -metrics-out;
	// attaching obs never perturbs results (the registry is passive).
	ospec := obsSpec{metrics: *metricsO != "" || *archO != "", trace: *traceO != ""}
	if *traceF != "" {
		ospec.filter = strings.Split(*traceF, ",")
	}
	dur := time.Duration(*minutes) * time.Minute
	start := time.Now()

	if *reps == 1 {
		r, err := runDrive(cfg, *city, *seed, *speed, *numAPs, dur, *pcapOut, *chaos, ospec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spider-sim:", err)
			os.Exit(1)
		}
		fmt.Printf("Drive: %s, %d APs, %.1f m/s, %v simulated (%v wall)\n",
			*city, r.numAPs, r.speedMS, dur, time.Since(start).Round(time.Millisecond))
		fmt.Printf("Driver: %s\n\n", r.mode)
		report(r)
		if err := writeObs(*metricsO, *traceO, r.snap, r.tracer); err != nil {
			fmt.Fprintln(os.Stderr, "spider-sim:", err)
			os.Exit(1)
		}
		if *archO != "" {
			if err := writeDriveArchive(*archO, *seed, configFP, *chaos, []driveResult{r}); err != nil {
				fmt.Fprintln(os.Stderr, "spider-sim:", err)
				os.Exit(1)
			}
		}
		if r.checkerErr != nil {
			os.Exit(1)
		}
		return
	}

	// Each replication derives its world seed from (seed, config, rep):
	// distinct streams per rep, reproducible at any -workers value. The
	// fold runs after the sweep, over the index-ordered results, so both
	// the report and the merged metrics are worker-count independent.
	type accum struct {
		results []driveResult
		snaps   []obs.Snapshot
	}
	acc, err := sweep.Reduce(context.Background(), *workers, *reps,
		func(_ context.Context, rep int) (driveResult, error) {
			return runDrive(cfg, *city, sweep.TaskSeed(*seed, *config, rep), *speed, *numAPs, dur, "", *chaos, ospec)
		},
		accum{}, func(a accum, r driveResult) accum {
			a.results = append(a.results, r)
			if r.snap != nil {
				a.snaps = append(a.snaps, r.snap)
			}
			return a
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spider-sim:", err)
		os.Exit(1)
	}
	results := acc.results
	if *metricsO != "" {
		if err := obs.WriteMetricsFile(*metricsO, obs.MergeSnapshots(acc.snaps...)); err != nil {
			fmt.Fprintln(os.Stderr, "spider-sim:", err)
			os.Exit(1)
		}
	}
	if *archO != "" {
		if err := writeDriveArchive(*archO, *seed, configFP, *chaos, results); err != nil {
			fmt.Fprintln(os.Stderr, "spider-sim:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("Drive: %s, %d APs, %.1f m/s, %v simulated ×%d reps (%v wall, %d workers)\n",
		*city, results[0].numAPs, results[0].speedMS, dur, *reps,
		time.Since(start).Round(time.Millisecond), sweep.Workers(*workers))
	fmt.Printf("Driver: %s\n\n", results[0].mode)
	var tputs, conn []float64
	checkerFailed := false
	for i, r := range results {
		fmt.Printf("  rep %d (seed %d): %s, connectivity %s, %d connections, %d disruptions\n",
			i, r.seed, metrics.FormatKBps(r.throughputKBps), metrics.FormatPct(r.connectivity),
			len(r.conns), len(r.gaps))
		if r.checkerErr != nil {
			fmt.Printf("    CHECKER FAILED: %v\n", r.checkerErr)
			checkerFailed = true
		}
		tputs = append(tputs, r.throughputKBps)
		conn = append(conn, r.connectivity)
	}
	fmt.Printf("\n  avg throughput:   %s ± %s\n",
		metrics.FormatKBps(metrics.Mean(tputs)), metrics.FormatKBps(metrics.StdDev(tputs)))
	fmt.Printf("  connectivity:     %s ± %s\n",
		metrics.FormatPct(metrics.Mean(conn)), metrics.FormatPct(metrics.StdDev(conn)))
	if checkerFailed {
		os.Exit(1)
	}
}
